#include "core/coordinator.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/file.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "common/chaos.hpp"
#include "common/io_retry.hpp"
#include "common/store_keys.hpp"
#include "core/store_stats.hpp"

namespace create {

namespace {

/** Wall-clock seconds: assignment timeouts and lease timestamps are
 *  compared across processes/machines, so never the steady clock. */
double
wallSeconds()
{
    using namespace std::chrono;
    return duration<double>(system_clock::now().time_since_epoch()).count();
}

/**
 * The one send primitive of the coordinator wire, shared by both sides
 * so the `connreset` chaos fault covers both directions: when it fires,
 * only a random prefix of the buffer reaches the wire and the
 * connection drops mid-frame -- the peer's StreamDecoder buffers the
 * torn frame, sees EOF, and the campaign must heal through
 * reconnect/re-dispatch.
 */
bool
wireSend(int fd, const char* data, std::size_t n, std::string* error)
{
    if (chaos::shouldConnReset()) {
        const auto keep = static_cast<std::size_t>(
            static_cast<double>(n) * chaos::connResetKeepFraction());
        std::string ignored;
        if (keep > 0)
            io::writeFull(fd, data, keep, &ignored);
        ::shutdown(fd, SHUT_RDWR);
        std::fprintf(stderr,
                     "[chaos] connreset after %zu of %zu bytes (pid %d)\n",
                     keep, n, static_cast<int>(::getpid()));
        if (error)
            *error = "injected connreset";
        return false;
    }
    return io::writeFull(fd, data, n, error);
}

} // namespace

namespace coordwire {

const char* const kPrefix = "coord|";

JsonRecord
control(const std::string& verb)
{
    JsonRecord rec;
    rec.name = std::string(kPrefix) + verb;
    return rec;
}

bool
isControl(const JsonRecord& rec, std::string* verb)
{
    const std::size_t n = std::char_traits<char>::length(kPrefix);
    if (rec.name.compare(0, n, kPrefix) != 0)
        return false;
    if (verb)
        *verb = rec.name.substr(n);
    return true;
}

} // namespace coordwire

// ---------------------------------------------------------------- client

CoordClient::~CoordClient()
{
    close();
}

void
CoordClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    // Fresh codec state either way: a reconnected stream starts with a
    // new header and a new dictionary on both sides.
    enc_.reset();
    dec_.reset();
}

bool
CoordClient::connect(const std::string& host, int port,
                     const std::string& workerId, int attempts,
                     std::string* error)
{
    close();
    fd_ = io::connectRetry(host, port, attempts, error);
    if (fd_ < 0)
        return false;
    std::string out;
    binlog::FrameEncoder::encodeHeader(out);
    JsonRecord hello = coordwire::control("hello");
    hello.strings.emplace_back("worker", workerId);
    hello.numbers.emplace_back("proto", 1.0);
    enc_.encodeRecord(hello, out);
    if (!wireSend(fd_, out.data(), out.size(), error)) {
        close();
        return false;
    }
    return true;
}

bool
CoordClient::send(const std::vector<JsonRecord>& recs, std::string* error)
{
    if (fd_ < 0) {
        if (error)
            *error = "not connected";
        return false;
    }
    std::string out;
    for (const JsonRecord& rec : recs)
        enc_.encodeRecord(rec, out);
    if (out.empty())
        return true;
    if (!wireSend(fd_, out.data(), out.size(), error)) {
        close();
        return false;
    }
    return true;
}

bool
CoordClient::send(const JsonRecord& rec, std::string* error)
{
    std::vector<JsonRecord> one;
    one.push_back(rec);
    return send(one, error);
}

bool
CoordClient::recv(JsonRecord& rec, std::string* error)
{
    if (fd_ < 0) {
        if (error)
            *error = "not connected";
        return false;
    }
    for (;;) {
        if (dec_.pop(rec))
            return true;
        char buf[65536];
        ssize_t n;
        do
            n = ::read(fd_, buf, sizeof(buf));
        while (n < 0 && errno == EINTR);
        if (n == 0) {
            if (error)
                *error = "coordinator closed the connection";
            close();
            return false;
        }
        if (n < 0) {
            if (error)
                *error = std::string("read: ") + std::strerror(errno);
            close();
            return false;
        }
        if (!dec_.feed(buf, static_cast<std::size_t>(n))) {
            if (error)
                *error = "corrupt frame stream from coordinator";
            close();
            return false;
        }
    }
}

// ----------------------------------------------------------- coordinator

Coordinator::Coordinator(Options opt) : opt_(std::move(opt))
{
    if (opt_.rangeEpisodes < 1)
        opt_.rangeEpisodes = 1;
    if (opt_.leaseSeconds <= 0.0)
        opt_.leaseSeconds = 30.0;
    if (opt_.flushEvery < 1)
        opt_.flushEvery = 1;
    char host[256] = "";
    if (::gethostname(host, sizeof(host) - 1) != 0 || host[0] == '\0')
        std::snprintf(host, sizeof(host), "localhost");
    host[sizeof(host) - 1] = '\0';
    coordId_ = std::string(host) + ":" + std::to_string(::getpid()) +
               ".coord";
}

Coordinator::~Coordinator()
{
    for (Conn& c : conns_)
        ::close(c.fd);
    if (listenFd_ >= 0)
        ::close(listenFd_);
}

bool
Coordinator::start(std::string* error)
{
    if (opt_.storePath.empty()) {
        if (error)
            *error = "coordinator requires a store path";
        return false;
    }
    std::string note;
    store_ = openStoreBackend(opt_.storePath, opt_.storeFormat,
                              "coordinator", &note);
    if (!note.empty())
        std::fprintf(stderr, "[coord] %s\n", note.c_str());
    std::vector<JsonRecord> records;
    StoreLoadInfo sal;
    if (store_->load(records, &sal, /*quarantineBadTails=*/true)) {
        if (sal.salvaged)
            std::fprintf(stderr,
                         "[coord] store %s is torn: salvaged %zu records "
                         "(%llu of %llu bytes)\n",
                         opt_.storePath.c_str(), records.size(),
                         static_cast<unsigned long long>(sal.goodBytes),
                         static_cast<unsigned long long>(sal.totalBytes));
        int schema = 1;
        for (const JsonRecord& rec : records)
            if (rec.name == kSweepStoreSchemaRecord)
                schema = static_cast<int>(rec.number("schema", 1));
        if (schema > kSweepStoreSchema) {
            if (error)
                *error = "store " + opt_.storePath + " has schema " +
                         std::to_string(schema) +
                         " (newer than this build's " +
                         std::to_string(kSweepStoreSchema) +
                         "); refusing to own it";
            return false;
        }
        for (JsonRecord& rec : records)
            mergeDiskRecord(std::move(rec));
    }

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    // SO_REUSEADDR: a coordinator restarted after kill -9 must rebind
    // its port immediately (the chaos restart leg depends on it).
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(static_cast<std::uint16_t>(opt_.port));
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 64) != 0) {
        if (error)
            *error = "bind/listen port " + std::to_string(opt_.port) +
                     ": " + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                      &len) == 0)
        port_ = static_cast<int>(ntohs(addr.sin_port));
    ::fcntl(listenFd_, F_SETFL, O_NONBLOCK);
    lastFlush_ = lastRenew_ = lastReload_ = wallSeconds();
    if (opt_.verbose)
        std::fprintf(stderr, "[coord] %s owns %s (%s)\n", coordId_.c_str(),
                     opt_.storePath.c_str(),
                     storeFormatName(store_->format()));
    return true;
}

void
Coordinator::runLoop()
{
    while (!stopping_) {
        std::vector<pollfd> pfds;
        pfds.reserve(conns_.size() + 1);
        pfds.push_back(pollfd{listenFd_, POLLIN, 0});
        for (const Conn& c : conns_)
            pfds.push_back(pollfd{c.fd, POLLIN, 0});
        const int rc = ::poll(pfds.data(),
                              static_cast<nfds_t>(pfds.size()), 100);
        if (rc < 0 && errno != EINTR) {
            std::fprintf(stderr, "[coord] poll: %s\n",
                         std::strerror(errno));
            break;
        }
        if (rc > 0) {
            if (pfds[0].revents & POLLIN)
                acceptConns();
            // Process by fd: a drop mid-loop erases from conns_, so the
            // pollfd list (a snapshot) is the safe thing to walk.
            for (std::size_t p = 1; p < pfds.size(); ++p)
                if (pfds[p].revents & (POLLIN | POLLHUP | POLLERR))
                    handleReadable(pfds[p].fd);
        }
        const double now = wallSeconds();
        expireAssignments(now);
        if (now - lastRenew_ >= opt_.leaseSeconds * 0.25) {
            lastRenew_ = now;
            renewLeases(now);
        }
        maybeReloadStore(now);
        if (!pendingBatch_.empty() && now - lastFlush_ >= 1.0)
            flushStore(false);
        if (opt_.once && anyDeclared_ && conns_.empty() && allComplete())
            break;
    }
    flushStore(true); // final: telemetry + whatever is pending
}

void
Coordinator::acceptConns()
{
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN: drained
        }
        ::fcntl(fd, F_SETFL, O_NONBLOCK);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        // Our direction of the stream opens with the same header a
        // .crbl file does (a capture is a valid log).
        std::string hdr;
        binlog::FrameEncoder::encodeHeader(hdr);
        std::string err;
        if (!wireSend(fd, hdr.data(), hdr.size(), &err)) {
            ::close(fd);
            continue;
        }
        Conn c;
        c.fd = fd;
        c.id = nextConnId_++;
        conns_.push_back(std::move(c));
        if (opt_.verbose)
            std::fprintf(stderr, "[coord] conn %d accepted\n",
                         conns_.back().id);
    }
}

void
Coordinator::handleReadable(int fd)
{
    const auto it = std::find_if(conns_.begin(), conns_.end(),
                                 [fd](const Conn& c) { return c.fd == fd; });
    if (it == conns_.end())
        return;
    const auto idx = static_cast<std::size_t>(it - conns_.begin());
    char buf[65536];
    for (;;) {
        Conn& conn = conns_[idx];
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n > 0) {
            if (!conn.dec.feed(buf, static_cast<std::size_t>(n))) {
                dropConn(idx, "corrupt frame stream");
                return;
            }
            JsonRecord rec;
            while (!conn.dead && conn.dec.pop(rec))
                handleRecord(conn, std::move(rec));
            if (conn.dead) {
                dropConn(idx, "send failed");
                return;
            }
            continue;
        }
        if (n == 0) {
            dropConn(idx, "disconnected");
            return;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return;
        dropConn(idx, std::strerror(errno));
        return;
    }
}

bool
Coordinator::handleRecord(Conn& conn, JsonRecord&& rec)
{
    std::string verb;
    if (coordwire::isControl(rec, &verb))
        handleControl(conn, verb, rec);
    else
        ingestRecord(conn, std::move(rec));
    return !conn.dead;
}

void
Coordinator::handleControl(Conn& conn, const std::string& verb,
                           const JsonRecord& rec)
{
    const double now = wallSeconds();
    if (verb == "hello") {
        conn.worker = rec.text("worker");
        if (conn.worker.empty())
            conn.worker = "conn" + std::to_string(conn.id);
        WorkerStats& ws = workers_[conn.worker];
        if (ws.firstSeen == 0.0)
            ws.firstSeen = now;
        ws.lastSeen = now;
        if (opt_.verbose)
            std::fprintf(stderr, "[coord] conn %d is %s\n", conn.id,
                         conn.worker.c_str());
    } else if (verb == "need") {
        const std::string fp = rec.text("fp");
        if (!fp.empty())
            conn.declared.insert(fp);
        declareNeed(fp, static_cast<int>(rec.number("need")));
    } else if (verb == "req") {
        dispatch(conn);
    } else if (verb == "done") {
        const auto it = fps_.find(rec.text("fp"));
        if (it != fps_.end()) {
            const int start = static_cast<int>(rec.number("start"));
            const int count = static_cast<int>(rec.number("count"));
            auto& as = it->second.assigned;
            for (auto a = as.begin(); a != as.end(); ++a) {
                if (a->connId != conn.id || a->start != start ||
                    a->count != count)
                    continue;
                WorkerStats& ws = workers_[conn.worker.empty()
                                               ? "conn" +
                                                     std::to_string(conn.id)
                                               : conn.worker];
                ++ws.rangesCompleted;
                ws.lastSeen = now;
                ws.rangeWallMs.push_back((now - a->since) * 1000.0);
                as.erase(a);
                break;
            }
            // A `done` for an assignment we already expired is a
            // straggler finishing a re-dispatched range: its episodes
            // merged idempotently above, nothing else to do.
        }
        if (!pendingBatch_.empty())
            flushStore(false); // range boundary: land the batch
    } else if (verb == "fetch") {
        serveFetch(conn, rec);
    }
    // Unknown verbs are ignored: newer workers degrade gracefully.
}

void
Coordinator::ingestRecord(Conn& conn, JsonRecord&& rec)
{
    std::string fp;
    const int idx = sweepEpisodeIndex(rec.name, &fp);
    if (idx >= 0) {
        const auto it = fps_.find(fp);
        bool fresh = false;
        if (it != fps_.end() && idx < it->second.need &&
            !it->second.have[static_cast<std::size_t>(idx)]) {
            it->second.have[static_cast<std::size_t>(idx)] = 1;
            ++it->second.haveCount;
            fresh = true;
        }
        ++episodesIngested_;
        if (!conn.worker.empty()) {
            WorkerStats& ws = workers_[conn.worker];
            ++ws.episodes;
            ws.lastSeen = wallSeconds();
        }
        // Duplicates (a straggler finishing a re-dispatched range) are
        // not appended again -- they would bloat an append log -- but
        // the merged view keeps the latest copy (bit-identical anyway:
        // episodes are deterministic).
        if (fresh || storeRecords_.find(rec.name) == storeRecords_.end())
            pendingBatch_.push_back(rec);
        const bool nowComplete = it != fps_.end() &&
                                 it->second.haveCount == it->second.need &&
                                 !it->second.complete;
        storeRecords_[rec.name] = std::move(rec);
        if (nowComplete)
            completeFp(fp, it->second);
    } else {
        // Ledger meta (and anything else a worker would have appended
        // locally): keep it, append it once.
        if (storeRecords_.find(rec.name) == storeRecords_.end())
            pendingBatch_.push_back(rec);
        storeRecords_[rec.name] = std::move(rec);
    }
    if (static_cast<int>(pendingBatch_.size()) >= opt_.flushEvery)
        flushStore(false);
}

void
Coordinator::declareNeed(const std::string& fp, int need)
{
    if (fp.empty() || need < 1)
        return;
    anyDeclared_ = true;
    const auto [it, inserted] = fps_.emplace(fp, FpState{});
    if (inserted)
        fpOrder_.push_back(fp);
    FpState& st = it->second;
    if (need > st.need) {
        st.need = need;
        st.have.resize(static_cast<std::size_t>(need), 0);
        st.complete = false;
    }
    // Seed the bitmap from the store: episodes from earlier campaigns,
    // filesystem workers, or a pre-restart incarnation of this
    // coordinator all count (the gap-fill exactly-once primitive).
    for (int i = 0; i < st.need; ++i) {
        if (st.have[static_cast<std::size_t>(i)])
            continue;
        if (storeRecords_.count(sweepEpisodeKey(fp, i))) {
            st.have[static_cast<std::size_t>(i)] = 1;
            ++st.haveCount;
        }
    }
    if (st.haveCount == st.need && !st.complete)
        completeFp(fp, st);
    if (opt_.verbose)
        std::fprintf(stderr, "[coord] declared %s need=%d have=%d\n",
                     fp.c_str(), st.need, st.haveCount);
}

void
Coordinator::dispatch(Conn& conn)
{
    const double now = wallSeconds();
    expireAssignments(now);
    maybeReloadStore(now);
    for (const std::string& fp : fpOrder_) {
        if (!conn.declared.count(fp))
            continue; // never hand a worker a ledger it cannot run
        FpState& st = fps_[fp];
        if (st.complete || st.deferredUntil > now)
            continue;
        if (!ensureLease(fp, st, now))
            continue; // live filesystem lease: deferred
        // First episode that is neither stored nor in flight.
        const auto inFlight = [&st](int i) {
            for (const Assignment& a : st.assigned)
                if (i >= a.start && i < a.start + a.count)
                    return true;
            return false;
        };
        int start = -1;
        for (int i = 0; i < st.need; ++i) {
            if (!st.have[static_cast<std::size_t>(i)] && !inFlight(i)) {
                start = i;
                break;
            }
        }
        if (start < 0)
            continue; // everything missing is in flight
        // Range size: the default quantum, shrunk near the tail so the
        // last episodes spread across the fleet instead of stranding on
        // one straggler.
        int chunk = opt_.rangeEpisodes;
        const int workers = std::max(1, activeWorkers());
        const long long fair =
            (remainingUnassigned() + workers - 1) / workers;
        if (fair < chunk)
            chunk = static_cast<int>(std::max(1LL, fair));
        int count = 0;
        for (int i = start; i < st.need && count < chunk; ++i) {
            if (st.have[static_cast<std::size_t>(i)] || inFlight(i))
                break;
            ++count;
        }
        Assignment a;
        a.start = start;
        a.count = count;
        a.connId = conn.id;
        a.worker = conn.worker;
        a.since = now;
        st.assigned.push_back(std::move(a));
        ++rangesDispatched_;
        if (!conn.worker.empty()) {
            WorkerStats& ws = workers_[conn.worker];
            ++ws.rangesAssigned;
            ws.lastSeen = now;
        }
        JsonRecord r = coordwire::control("range");
        r.strings.emplace_back("fp", fp);
        r.numbers.emplace_back("start", start);
        r.numbers.emplace_back("count", count);
        sendRecord(conn, r);
        if (opt_.verbose)
            std::fprintf(stderr, "[coord] %s <- %s [%d, %d)\n",
                         conn.worker.c_str(), fp.c_str(), start,
                         start + count);
        return;
    }
    // Fin is scoped to what *this* worker declared: its campaign can be
    // complete while a differently-scoped fleet keeps working.
    bool mineComplete = !conn.declared.empty();
    for (const std::string& fp : conn.declared) {
        const auto it = fps_.find(fp);
        mineComplete = mineComplete && it != fps_.end() &&
                       it->second.complete;
    }
    if (mineComplete) {
        sendRecord(conn, coordwire::control("fin"));
        return;
    }
    // Incomplete but nothing to hand out (all in flight, or deferred to
    // a filesystem fleet): tell the worker when to ask again.
    JsonRecord w = coordwire::control("wait");
    w.numbers.emplace_back(
        "ms", std::max(50.0, std::min(1000.0, opt_.leaseSeconds * 250.0)));
    sendRecord(conn, w);
}

void
Coordinator::serveFetch(Conn& conn, const JsonRecord& rec)
{
    const std::string fp = rec.text("fp");
    const int need = static_cast<int>(rec.number("need"));
    std::string buf;
    for (int i = 0; i < need; ++i) {
        const auto it = storeRecords_.find(sweepEpisodeKey(fp, i));
        if (it != storeRecords_.end())
            conn.enc.encodeRecord(it->second, buf);
    }
    JsonRecord done = coordwire::control("fetched");
    done.strings.emplace_back("fp", fp);
    conn.enc.encodeRecord(done, buf);
    std::string err;
    if (!wireSend(conn.fd, buf.data(), buf.size(), &err))
        conn.dead = true;
}

bool
Coordinator::sendRecord(Conn& conn, const JsonRecord& rec)
{
    std::string buf;
    conn.enc.encodeRecord(rec, buf);
    std::string err;
    if (!wireSend(conn.fd, buf.data(), buf.size(), &err)) {
        conn.dead = true;
        return false;
    }
    return true;
}

void
Coordinator::dropConn(std::size_t index, const char* why)
{
    Conn& conn = conns_[index];
    // Fold its outstanding assignments back into the pool: the missing
    // indices re-dispatch to the next requester (exactly-once is the
    // have-bitmap, so a straggler's late duplicates stay harmless).
    for (auto& [fp, st] : fps_) {
        for (auto a = st.assigned.begin(); a != st.assigned.end();) {
            if (a->connId == conn.id) {
                if (st.complete) {
                    // The fp finished but this worker never got its
                    // `done` matched (e.g. it crashed right after the
                    // final episode landed): drop the stale assignment
                    // without charging a re-dispatch.
                    a = st.assigned.erase(a);
                    continue;
                }
                ++rangesRedispatched_;
                if (!a->worker.empty())
                    ++workers_[a->worker].rangesRedispatched;
                if (opt_.verbose)
                    std::fprintf(stderr,
                                 "[coord] re-pooling %s [%d, %d) from "
                                 "dropped %s\n",
                                 fp.c_str(), a->start, a->start + a->count,
                                 conn.worker.c_str());
                a = st.assigned.erase(a);
            } else {
                ++a;
            }
        }
    }
    if (opt_.verbose)
        std::fprintf(stderr, "[coord] conn %d (%s) closed: %s\n", conn.id,
                     conn.worker.empty() ? "?" : conn.worker.c_str(), why);
    ::close(conn.fd);
    conns_.erase(conns_.begin() +
                 static_cast<std::ptrdiff_t>(index));
}

void
Coordinator::expireAssignments(double now)
{
    for (auto& [fp, st] : fps_) {
        if (st.complete)
            continue; // nothing left to re-dispatch; let `done` match
        for (auto a = st.assigned.begin(); a != st.assigned.end();) {
            if (now - a->since > opt_.leaseSeconds) {
                std::fprintf(stderr,
                             "[coord] range %s [%d, %d) timed out on %s "
                             "(%.1fs); re-dispatching\n",
                             fp.c_str(), a->start, a->start + a->count,
                             a->worker.empty() ? "?" : a->worker.c_str(),
                             now - a->since);
                ++rangesRedispatched_;
                if (!a->worker.empty())
                    ++workers_[a->worker].rangesRedispatched;
                a = st.assigned.erase(a);
            } else {
                ++a;
            }
        }
    }
}

bool
Coordinator::ensureLease(const std::string& fp, FpState& st, double now)
{
    if (st.leaseHeld)
        return true;
    // Claim under the store flock sidecar, exactly the filesystem
    // workers' claim discipline: reload the disk view while holding it,
    // honor a live foreign lease, otherwise write a generation-bumped
    // claim *before* the flock drops. This is the only flock the
    // coordinator ever takes on a binlog store -- the data path appends
    // lock-free.
    const std::string lockPath = opt_.storePath + ".lock";
    const int lockFd =
        io::openRetry(lockPath.c_str(), O_CREAT | O_RDWR, 0644);
    io::FdCloser closeLock(lockFd);
    if (lockFd < 0 || !io::flockRetry(lockFd, LOCK_EX))
        std::fprintf(stderr,
                     "[coord] warning: cannot lock %s; lease claims may "
                     "race\n",
                     lockPath.c_str());
    std::vector<JsonRecord> disk;
    StoreLoadInfo sal;
    if (store_->load(disk, &sal, /*quarantineBadTails=*/false))
        for (JsonRecord& rec : disk)
            mergeDiskRecord(std::move(rec));
    std::uint64_t gen = 1;
    const auto rit = storeRecords_.find(sweepLeaseKey(fp));
    if (rit != storeRecords_.end()) {
        const std::string owner = rit->second.text("owner");
        const bool done = rit->second.number("done") != 0.0;
        const double renewed = rit->second.number("renewedAt");
        if (!done && !owner.empty() && owner != coordId_ &&
            now - renewed <= opt_.leaseSeconds) {
            // A live filesystem worker owns this ledger: defer it and
            // fold its progress in on the reload cadence.
            st.deferredUntil = now + opt_.leaseSeconds * 0.25;
            foreignLeaseSeen_ = true;
            if (opt_.verbose)
                std::fprintf(stderr,
                             "[coord] %s is live-leased by %s; deferring\n",
                             fp.c_str(), owner.c_str());
            return false;
        }
        gen = static_cast<std::uint64_t>(rit->second.number("gen")) + 1;
        if (!done && !owner.empty() && owner != coordId_)
            std::fprintf(stderr,
                         "[coord] stealing lease on %s from %s (stale "
                         "%.1fs > lease %.1fs)\n",
                         fp.c_str(), owner.c_str(), now - renewed,
                         opt_.leaseSeconds);
    }
    JsonRecord lr;
    lr.name = sweepLeaseKey(fp);
    lr.strings.emplace_back("owner", coordId_);
    lr.numbers.emplace_back("gen", static_cast<double>(gen));
    lr.numbers.emplace_back("renewedAt", now);
    lr.numbers.emplace_back("done", 0.0);
    std::vector<JsonRecord> claim;
    claim.push_back(lr);
    storeRecords_[lr.name] = std::move(lr);
    st.leaseHeld = true;
    st.leaseGen = gen;
    st.deferredUntil = 0.0;
    std::string err;
    if (!store_->flush(storeRecords_, claim, &err))
        // The lease is advisory toward a filesystem fleet; a claim that
        // missed the disk only risks duplicate (idempotent) episodes.
        std::fprintf(stderr,
                     "[coord] warning: lease claim on %s did not reach "
                     "disk: %s\n",
                     fp.c_str(), err.c_str());
    return true;
}

void
Coordinator::completeFp(const std::string& fp, FpState& st)
{
    st.complete = true;
    // Outstanding assignments stay: the finishing worker's `done` (which
    // follows its episodes on the wire, i.e. arrives right after the
    // ingest that completed the fp) must still match to credit its
    // telemetry. Schedulers skip complete fps, so they are inert.
    if (st.leaseHeld) {
        // Publish done=1 under our generation: filesystem workers fold
        // the finished ledger instead of waiting out the lease.
        JsonRecord lr;
        lr.name = sweepLeaseKey(fp);
        lr.strings.emplace_back("owner", coordId_);
        lr.numbers.emplace_back("gen", static_cast<double>(st.leaseGen));
        lr.numbers.emplace_back("renewedAt", wallSeconds());
        lr.numbers.emplace_back("done", 1.0);
        pendingBatch_.push_back(lr);
        storeRecords_[lr.name] = std::move(lr);
    }
    if (opt_.verbose)
        std::fprintf(stderr, "[coord] %s complete (%d episodes)\n",
                     fp.c_str(), st.need);
}

void
Coordinator::noteEpisode(const std::string& name)
{
    std::string fp;
    const int idx = sweepEpisodeIndex(name, &fp);
    if (idx < 0)
        return;
    const auto it = fps_.find(fp);
    if (it == fps_.end() || idx >= it->second.need ||
        it->second.have[static_cast<std::size_t>(idx)])
        return;
    it->second.have[static_cast<std::size_t>(idx)] = 1;
    ++it->second.haveCount;
}

void
Coordinator::maybeReloadStore(double now)
{
    // Only mixed fleets need the periodic re-read: a pure socket
    // campaign's records all arrive on the wire.
    bool interested = foreignLeaseSeen_;
    bool anyIncomplete = false;
    for (const auto& [fp, st] : fps_) {
        anyIncomplete = anyIncomplete || !st.complete;
        interested = interested || st.deferredUntil > 0.0;
    }
    if (!interested || !anyIncomplete)
        return;
    if (now - lastReload_ < std::max(1.0, opt_.leaseSeconds * 0.25))
        return;
    lastReload_ = now;
    std::vector<JsonRecord> disk;
    StoreLoadInfo sal;
    if (!store_->load(disk, &sal, /*quarantineBadTails=*/false))
        return;
    for (JsonRecord& rec : disk)
        mergeDiskRecord(std::move(rec));
    for (auto& [fp, st] : fps_)
        if (!st.complete && st.haveCount == st.need)
            completeFp(fp, st);
}

void
Coordinator::mergeDiskRecord(JsonRecord&& rec)
{
    if (sweepLeaseFingerprint(rec.name)) {
        if (!rec.text("owner").empty() && rec.text("owner") != coordId_ &&
            rec.number("done") == 0.0)
            foreignLeaseSeen_ = true;
        const auto it = storeRecords_.find(rec.name);
        if (it == storeRecords_.end())
            storeRecords_.emplace(rec.name, std::move(rec));
        else if (leaseRecordBeats(rec, it->second))
            it->second = std::move(rec);
        return;
    }
    // Data records: our in-memory copy is at least as new (episodes are
    // deterministic, so duplicates are bit-identical anyway); only new
    // keys fold in.
    const auto it = storeRecords_.find(rec.name);
    if (it != storeRecords_.end())
        return;
    noteEpisode(rec.name);
    std::string name = rec.name;
    storeRecords_.emplace(std::move(name), std::move(rec));
}

void
Coordinator::flushStore(bool force)
{
    if (!store_)
        return;
    if (pendingBatch_.empty() && schemaStamped_ && !force)
        return;
    if (!schemaStamped_) {
        JsonRecord schema;
        schema.name = kSweepStoreSchemaRecord;
        schema.numbers.emplace_back("schema", kSweepStoreSchema);
        pendingBatch_.push_back(schema);
        storeRecords_[kSweepStoreSchemaRecord] = std::move(schema);
        schemaStamped_ = true;
    }
    writeWorkerTelemetry();
    // A rewriting (json) backend replaces the whole file, so when
    // filesystem workers share the store the read-merge-rename must be
    // atomic across processes -- the same sidecar-flock discipline the
    // sweep engine uses. Appending (binlog) backends skip all of it:
    // every writer owns its log, the data path takes no lock.
    int lockFd = -1;
    if (store_->rewritesWholeStore()) {
        const std::string lockPath = store_->lockPath();
        lockFd = io::openRetry(lockPath.c_str(), O_CREAT | O_RDWR, 0644);
        if (lockFd < 0 || !io::flockRetry(lockFd, LOCK_EX))
            std::fprintf(stderr,
                         "[coord] warning: cannot lock %s; concurrent "
                         "flushes may drop records\n",
                         lockPath.c_str());
        std::vector<JsonRecord> disk;
        StoreLoadInfo sal;
        if (store_->load(disk, &sal, /*quarantineBadTails=*/false))
            for (JsonRecord& rec : disk)
                mergeDiskRecord(std::move(rec));
    }
    io::FdCloser closeLock(lockFd);
    std::string err;
    bool ok = false;
    for (int attempt = 0; attempt < io::kRetryAttempts && !ok; ++attempt) {
        if (attempt > 0) {
            std::fprintf(stderr,
                         "[coord] store write failed (%s); retry %d/%d\n",
                         err.c_str(), attempt, io::kRetryAttempts - 1);
            io::sleepMs(io::kRetryBaseMs << (attempt - 1));
        }
        ok = store_->flush(storeRecords_, pendingBatch_, &err);
    }
    if (!ok)
        throw std::runtime_error(
            "cannot write coordinator store " + opt_.storePath + ": " +
            err + " -- campaign aborted; workers can re-point a restarted "
            "coordinator at the salvaged store");
    pendingBatch_.clear();
    lastFlush_ = wallSeconds();
}

void
Coordinator::renewLeases(double now)
{
    bool any = false;
    for (auto& [fp, st] : fps_) {
        if (!st.leaseHeld || st.complete)
            continue;
        JsonRecord lr;
        lr.name = sweepLeaseKey(fp);
        lr.strings.emplace_back("owner", coordId_);
        lr.numbers.emplace_back("gen", static_cast<double>(st.leaseGen));
        lr.numbers.emplace_back("renewedAt", now);
        lr.numbers.emplace_back("done", 0.0);
        pendingBatch_.push_back(lr);
        storeRecords_[lr.name] = std::move(lr);
        any = true;
    }
    if (any)
        flushStore(false); // renewals must reach disk to count
}

void
Coordinator::writeWorkerTelemetry()
{
    // One `worker|<id>` record per fleet member, refreshed every flush.
    // Pure observability: readers surface them (sweep-stats shards
    // table) but never fold them into cells, so the bit-exact diff
    // gates are untouched.
    for (const auto& [id, ws] : workers_) {
        JsonRecord r;
        r.name = sweepWorkerKey(id);
        r.numbers.emplace_back("rangesAssigned",
                               static_cast<double>(ws.rangesAssigned));
        r.numbers.emplace_back("rangesCompleted",
                               static_cast<double>(ws.rangesCompleted));
        r.numbers.emplace_back(
            "rangesRedispatched",
            static_cast<double>(ws.rangesRedispatched));
        r.numbers.emplace_back("episodes",
                               static_cast<double>(ws.episodes));
        r.numbers.emplace_back("elapsed", ws.lastSeen - ws.firstSeen);
        if (!ws.rangeWallMs.empty()) {
            r.numbers.emplace_back("rangeP50Ms",
                                   percentile(ws.rangeWallMs, 50.0));
            r.numbers.emplace_back("rangeP95Ms",
                                   percentile(ws.rangeWallMs, 95.0));
        }
        pendingBatch_.push_back(r);
        storeRecords_[r.name] = std::move(r);
    }
}

bool
Coordinator::allComplete() const
{
    for (const auto& [fp, st] : fps_)
        if (!st.complete)
            return false;
    return anyDeclared_;
}

long long
Coordinator::remainingUnassigned() const
{
    long long remaining = 0;
    for (const auto& [fp, st] : fps_) {
        if (st.complete)
            continue;
        long long inFlight = 0;
        for (const Assignment& a : st.assigned)
            inFlight += a.count;
        const long long missing = st.need - st.haveCount - inFlight;
        if (missing > 0)
            remaining += missing;
    }
    return remaining;
}

int
Coordinator::activeWorkers() const
{
    int n = 0;
    for (const Conn& c : conns_)
        if (!c.worker.empty())
            ++n;
    return n;
}

} // namespace create
