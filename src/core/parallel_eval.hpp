#pragma once

/**
 * @file
 * ParallelEvaluator: fans episode repetitions of one EmbodiedSystem out
 * across a fixed pool of worker threads.
 *
 * The paper's headline results all come from >=100 repeated episodes per
 * deployment configuration; those repetitions are embarrassingly parallel
 * but were strictly serial in the seed reproduction. The evaluator makes
 * them scale without changing a single digit of the output:
 *
 *  - Each worker owns its own EmbodiedSystem replica. Replicas share the
 *    frozen, immutable model set (weights, quantization scales, AD
 *    bounds; see core/shared_models.hpp) -- prepare() freezes everything
 *    a config touches serially before fan-out -- while every mutable
 *    piece (per-episode ComputeContexts with their RNG streams, energy
 *    meters, and GEMM workspaces) lives per worker, so threads never
 *    share mutable state.
 *  - Episode i always runs at seed0 + i, and every ComputeContext /
 *    action RNG inside an episode is derived from that seed alone, so the
 *    per-episode RNG streams are isolated by construction.
 *  - Results land in a pre-sized vector at their episode index and are
 *    aggregated in episode order, so the floating-point reduction order --
 *    and therefore the aggregate TaskStats -- is bit-identical to the
 *    serial path for any thread count.
 *
 * Work is distributed dynamically (an atomic next-episode cursor), which
 * load-balances the wildly varying episode lengths a corrupted agent
 * produces without affecting determinism.
 */

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/embodied_system.hpp"

namespace create {

/** Fixed worker pool evaluating episode repetitions in parallel. */
class ParallelEvaluator
{
  public:
    /**
     * Build `threads` bit-identical replicas of `prototype` (serially, on
     * the calling thread) and start the worker pool.
     *
     * @param threads worker count; clamped to >= 1. 0 picks the hardware
     *        concurrency.
     * @param batched fuse concurrent per-episode GEMMs across workers
     *        through a BatchedInferenceQueue (bit-identical either way;
     *        see core/batched_queue.hpp). Ignored with a single worker.
     */
    ParallelEvaluator(const EmbodiedSystem& prototype, int threads,
                      bool batched = true);
    ~ParallelEvaluator();

    ParallelEvaluator(const ParallelEvaluator&) = delete;
    ParallelEvaluator& operator=(const ParallelEvaluator&) = delete;

    int threads() const { return static_cast<int>(replicas_.size()); }
    bool batched() const { return queue_ != nullptr; }

    /** Fusion counters since construction (zeros when not batching). */
    BatchStats batchStats() const;

    /**
     * Run `reps` episodes at seeds seed0, seed0+1, ... across the pool.
     * Returns results in episode order. Blocks until all episodes finish.
     * The optional sink is invoked from the worker threads as episodes
     * complete (it must be thread-safe; completion order is arbitrary but
     * each index is reported exactly once).
     */
    std::vector<EpisodeResult>
    runEpisodes(int taskId, const CreateConfig& cfg, int reps,
                std::uint64_t seed0 = EmbodiedSystem::kDefaultSeed0,
                EpisodeSink* sink = nullptr);

    /** runEpisodes + aggregation at the platform's paper-scale energy. */
    TaskStats evaluate(int taskId, const CreateConfig& cfg, int reps,
                       std::uint64_t seed0 = EmbodiedSystem::kDefaultSeed0);

    /** Default worker count: hardware concurrency (>= 1). */
    static int defaultThreads();

  private:
    struct Job
    {
        int taskId = 0;
        const CreateConfig* cfg = nullptr;
        int reps = 0;
        std::uint64_t seed0 = 0;
        std::vector<EpisodeResult>* out = nullptr;
        EpisodeSink* sink = nullptr;
    };

    void workerLoop(std::size_t workerIdx);

    std::vector<std::unique_ptr<EmbodiedSystem>> replicas_;
    std::vector<std::thread> workers_;
    /** Cross-episode GEMM batcher shared by all worker replicas. */
    std::unique_ptr<BatchedInferenceQueue> queue_;

    std::mutex mu_;
    std::condition_variable workCv_;  //!< signals a new job / shutdown
    std::condition_variable doneCv_;  //!< signals job completion
    Job job_;
    std::uint64_t jobGen_ = 0;        //!< bumped once per submitted job
    std::atomic<int> nextEpisode_{0}; //!< dynamic work cursor
    int workersDone_ = 0;
    bool stop_ = false;
    std::string workerError_;         //!< first exception message, if any
};

} // namespace create
