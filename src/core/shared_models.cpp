#include "core/shared_models.hpp"

namespace create {

namespace {

/** A clean nominal-voltage context at the given datapath width. */
ComputeContext
warmContext(QuantBits bits)
{
    ComputeContext ctx(0);
    ctx.bits = bits;
    return ctx;
}

} // namespace

void
warmFreezePlanner(PlannerModel& p, QuantBits bits)
{
    // The head runs last, so a frozen head at the right width means the
    // warm pass already happened (layers freeze together: calibration and
    // invalidation both cover the whole module tree).
    const QuantGemmState& probe = p.head().quantState();
    if (probe.frozen && probe.wQ.bits == bits)
        return;
    ComputeContext ctx = warmContext(bits);
    p.inferLogits(0, 0, ctx);
}

void
warmFreezeController(ControllerModel& c, QuantBits bits)
{
    const ControllerConfig& cfg = c.config();
    const QuantGemmState& probe =
        c.block(cfg.layers - 1).fc2().quantState();
    if (probe.frozen && probe.wQ.bits == bits)
        return;
    ComputeContext ctx = warmContext(bits);
    c.inferLogits(0, std::vector<float>(cfg.spatialDim, 0.0f),
                  std::vector<float>(cfg.stateDim, 0.0f), ctx);
}

void
warmFreezePredictor(EntropyPredictor& p)
{
    const QuantGemmState& probe = p.fuse2().quantState();
    if (probe.frozen && probe.wQ.bits == QuantBits::Int8)
        return;
    ComputeContext ctx = warmContext(QuantBits::Int8);
    const PredictorConfig& cfg = p.config();
    p.infer(Tensor({3, cfg.imgRes, cfg.imgRes}),
            std::vector<float>(cfg.promptDim, 0.0f), ctx);
}

} // namespace create
