#include "core/voltage_policy.hpp"

#include <cmath>
#include <stdexcept>

namespace create {

EntropyVoltagePolicy::EntropyVoltagePolicy()
    : voltages_{TimingErrorModel::kNominalVoltage}, name_("nominal")
{
}

EntropyVoltagePolicy::EntropyVoltagePolicy(std::vector<double> thresholds,
                                           std::vector<double> voltages,
                                           std::string name)
    : thresholds_(std::move(thresholds)), voltages_(std::move(voltages)),
      name_(std::move(name))
{
    if (voltages_.size() != thresholds_.size() + 1)
        throw std::invalid_argument(
            "EntropyVoltagePolicy: need thresholds.size()+1 voltages");
}

double
EntropyVoltagePolicy::voltageFor(double normalizedEntropy) const
{
    std::size_t bucket = 0;
    while (bucket < thresholds_.size() &&
           normalizedEntropy > thresholds_[bucket])
        ++bucket;
    return voltages_[bucket];
}

EntropyVoltagePolicy
EntropyVoltagePolicy::constant(double v)
{
    EntropyVoltagePolicy p({}, {v}, "const@" + std::to_string(v));
    return p;
}

EntropyVoltagePolicy
EntropyVoltagePolicy::preset(char which)
{
    // Fig. 21: searched step policies from conservative (A) to aggressive
    // (F). Bucket breakpoints follow the observed entropy distribution:
    // critical steps sit near zero entropy, navigation around 0.1-0.3 of
    // max, and free exploration above that.
    const std::vector<double> th = {0.04, 0.12, 0.30};
    switch (which) {
      case 'A':
        return EntropyVoltagePolicy(th, {0.88, 0.86, 0.84, 0.82}, "A");
      case 'B':
        return EntropyVoltagePolicy(th, {0.87, 0.84, 0.80, 0.77}, "B");
      case 'C':
        return EntropyVoltagePolicy(th, {0.86, 0.82, 0.77, 0.72}, "C");
      case 'D':
        return EntropyVoltagePolicy(th, {0.84, 0.79, 0.73, 0.68}, "D");
      case 'E':
        return EntropyVoltagePolicy(th, {0.82, 0.76, 0.70, 0.65}, "E");
      case 'F':
        return EntropyVoltagePolicy(th, {0.80, 0.73, 0.66, 0.62}, "F");
      default:
        throw std::invalid_argument("EntropyVoltagePolicy: preset A..F");
    }
}

std::vector<EntropyVoltagePolicy>
EntropyVoltagePolicy::presets()
{
    std::vector<EntropyVoltagePolicy> out;
    for (char c = 'A'; c <= 'F'; ++c)
        out.push_back(preset(c));
    return out;
}

EntropyVoltagePolicy
EntropyVoltagePolicy::random(Rng& rng, int index)
{
    // Monotone non-increasing voltage steps over 4 entropy buckets.
    const std::vector<double> th = {0.04, 0.12, 0.30};
    std::vector<double> v(4);
    v[0] = rng.uniform(0.78, 0.90);
    for (int i = 1; i < 4; ++i)
        v[static_cast<std::size_t>(i)] =
            std::max(0.60, v[static_cast<std::size_t>(i - 1)] -
                               rng.uniform(0.0, 0.07));
    return EntropyVoltagePolicy(th, v, "cand" + std::to_string(index));
}

VoltageScaler::VoltageScaler(EntropyPredictor& predictor,
                             EntropyVoltagePolicy policy, int intervalSteps,
                             double maxEntropy)
    : predictor_(predictor), predictorCtx_(0xFEED), policy_(std::move(policy)),
      interval_(intervalSteps),
      maxEntropy_(maxEntropy > 0.0 ? maxEntropy
                                   : std::log(static_cast<double>(kNumActions)))
{
    predictorCtx_.domain = Domain::Predictor;
    // The predictor runs at nominal voltage with no injection so its
    // estimate is error-free (Sec. 5.3).
}

void
VoltageScaler::beforeController(const MineWorld& w, std::uint64_t step,
                                ComputeContext& controllerCtx,
                                EpisodeResult& r)
{
    if (interval_ <= 0 || step % static_cast<std::uint64_t>(interval_) != 0)
        return;
    const MineObs obs = w.observe();
    const Subtask& st = w.activeSubtask();
    const auto prompt = predictorPrompt(
        static_cast<int>(st.type), kNumSubtaskTypes, obs.spatial, obs.state,
        predictor_.config().promptDim);
    const float h = predictor_.infer(
        w.renderImage(predictor_.config().imgRes,
                      predictor_.config().viewRadius),
        prompt, predictorCtx_);
    ++r.predictorInvocations;
    lastEntropy_ = h;
    const double norm =
        std::min(1.0, std::max(0.0, static_cast<double>(h) / maxEntropy_));
    ldo_.set(policy_.voltageFor(norm));
    controllerCtx.setVoltage(ldo_.vout());
}

} // namespace create
