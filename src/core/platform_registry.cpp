#include "core/platform_registry.hpp"

#include <stdexcept>

#include "core/create_system.hpp"
#include "core/manip_system.hpp"
#include "core/nav_system.hpp"
#include "perf/workloads.hpp"

namespace create {

namespace {

template <typename Task>
std::vector<int>
taskIds(std::initializer_list<Task> ts)
{
    std::vector<int> ids;
    for (const auto t : ts)
        ids.push_back(static_cast<int>(t));
    return ids;
}

PlatformInfo
manipPlatform(const std::string& planner, const std::string& controller,
              const Workload& plannerW, const Workload& controllerW,
              std::vector<int> plannerTasks, std::vector<int> controllerTasks)
{
    PlatformInfo p;
    p.name = planner + "+" + controller;
    p.envFamily = "manipulation";
    p.plannerName = plannerW.name;
    p.controllerName = controllerW.name;
    p.plannerGops = plannerW.paperGops;
    p.controllerGops = controllerW.paperGops;
    p.plannerTasks = std::move(plannerTasks);
    p.controllerTasks = std::move(controllerTasks);
    p.factory = [planner, controller](bool verbose) {
        return std::make_unique<ManipSystem>(planner, controller, verbose);
    };
    return p;
}

PlatformInfo
navPlatform(const std::string& controller, const Workload& controllerW,
            std::vector<int> plannerTasks, std::vector<int> controllerTasks)
{
    PlatformInfo p;
    p.name = "navllama+" + controller;
    p.envFamily = "navigation";
    p.plannerName = workloads::navLlama().name;
    p.controllerName = controllerW.name;
    p.plannerGops = workloads::navLlama().paperGops;
    p.controllerGops = controllerW.paperGops;
    p.plannerTasks = std::move(plannerTasks);
    p.controllerTasks = std::move(controllerTasks);
    p.factory = [controller](bool verbose) {
        return std::make_unique<NavSystem>("navllama", controller, verbose);
    };
    return p;
}

} // namespace

PlatformRegistry::PlatformRegistry()
{
    // --- Minecraft family (paper Secs. 4-6) ------------------------------
    {
        PlatformInfo p;
        p.name = "jarvis-1";
        p.envFamily = "minecraft";
        p.plannerName = workloads::jarvisPlanner().name;
        p.controllerName = workloads::jarvisController().name;
        p.plannerGops = workloads::jarvisPlanner().paperGops;
        p.controllerGops = workloads::jarvisController().paperGops;
        p.plannerTasks = taskIds({MineTask::Wooden, MineTask::Stone});
        p.controllerTasks =
            taskIds({MineTask::Charcoal, MineTask::Chicken});
        p.factory = [](bool verbose) {
            return std::make_unique<MineSystem>(verbose);
        };
        registerPlatform(std::move(p));
    }

    // --- Manipulation family (paper Fig. 17, Table 10) -------------------
    registerPlatform(manipPlatform(
        "openvla", "octo", workloads::openVla(), workloads::octo(),
        taskIds({ManipTask::Wine, ManipTask::Alphabet, ManipTask::Bbq}),
        taskIds(
            {ManipTask::Eggplant, ManipTask::Coke, ManipTask::Carrot})));
    registerPlatform(manipPlatform(
        "roboflamingo", "rt1", workloads::roboFlamingo(), workloads::rt1(),
        taskIds({ManipTask::Button, ManipTask::Block, ManipTask::Handle}),
        taskIds({ManipTask::Open, ManipTask::Move, ManipTask::Place})));

    // --- Navigation family (third family; NavWorld missions) -------------
    registerPlatform(navPlatform(
        "pathrt", workloads::pathRt(),
        taskIds({NavTask::Delivery, NavTask::Patrol, NavTask::Corridor,
                  NavTask::Rooftop}),
        taskIds({NavTask::Inspect, NavTask::Survey, NavTask::Canyon,
                  NavTask::Relay})));
    registerPlatform(navPlatform(
        "swiftpilot", workloads::swiftPilot(),
        taskIds({NavTask::Rescue, NavTask::Homebound, NavTask::Canyon,
                  NavTask::Corridor}),
        taskIds({NavTask::Delivery, NavTask::Patrol, NavTask::Relay,
                  NavTask::Rooftop})));
}

PlatformRegistry&
PlatformRegistry::instance()
{
    static PlatformRegistry registry;
    return registry;
}

void
PlatformRegistry::registerPlatform(PlatformInfo info)
{
    if (find(info.name))
        throw std::invalid_argument("platform already registered: " +
                                    info.name);
    if (!info.factory)
        throw std::invalid_argument("platform has no factory: " + info.name);
    platforms_.push_back(std::move(info));
}

std::vector<std::string>
PlatformRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(platforms_.size());
    for (const auto& p : platforms_)
        out.push_back(p.name);
    return out;
}

const PlatformInfo*
PlatformRegistry::find(const std::string& name) const
{
    for (const auto& p : platforms_)
        if (p.name == name)
            return &p;
    return nullptr;
}

std::vector<const PlatformInfo*>
PlatformRegistry::select(const std::string& csv) const
{
    std::vector<const PlatformInfo*> out;
    if (csv.empty()) {
        for (const auto& p : platforms_)
            out.push_back(&p);
        return out;
    }
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        const std::size_t comma = csv.find(',', pos);
        const std::string name =
            csv.substr(pos, comma == std::string::npos ? std::string::npos
                                                       : comma - pos);
        if (!name.empty()) {
            const PlatformInfo* p = find(name);
            if (!p)
                throw std::invalid_argument("unknown platform: " + name);
            out.push_back(p);
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

std::unique_ptr<EmbodiedSystem>
PlatformRegistry::make(const std::string& name, bool verbose) const
{
    const PlatformInfo* p = find(name);
    if (!p)
        throw std::invalid_argument("unknown platform: " + name);
    return p->factory(verbose);
}

} // namespace create
