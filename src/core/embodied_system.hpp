#pragma once

/**
 * @file
 * EmbodiedSystem: the platform-generic facade over one embodied AI stack
 * (planner + controller + optional entropy predictor on an environment).
 *
 * A CreateConfig describes one deployment point: the injection model
 * (uniform BER for characterization, voltage-derived for evaluation), the
 * per-model operating voltages, and which CREATE techniques are active
 * (AD at the circuit level, WR at the model level, VS at the application
 * level) or which baseline protection replaces them (DMR / ThUnderVolt /
 * ABFT, Sec. 6.10). The config is platform-agnostic: the same deployment
 * point drives the Minecraft/JARVIS-1 stack (MineSystem), the
 * cross-platform manipulation stacks (ManipSystem), and the
 * autonomous-navigation stacks (NavSystem), which is exactly how the
 * paper's Fig. 17 generality study treats them. The platform catalogue
 * lives in core/platform_registry.hpp.
 *
 * evaluate() repeats episodes with deterministic per-episode seeding
 * (seed0 + rep) and aggregates success rate, average steps, effective
 * voltage, and paper-scale energy. With setEvalThreads(n > 1) the
 * repetitions fan out over a ParallelEvaluator worker pool whose replicas
 * are bit-identical to this system, so the aggregate TaskStats is the same
 * whether run with 1 or N threads.
 */

#include <memory>

#include "agent/metrics.hpp"
#include "core/batched_queue.hpp"
#include "core/voltage_policy.hpp"

namespace create {

class ParallelEvaluator;

/**
 * Observer of completed episodes, called as they finish. With a parallel
 * evaluator the calls arrive from worker threads in completion order (not
 * episode order), so implementations must be thread-safe; `index` is the
 * episode's position within the runEpisodes() call (seed = seed0 + index).
 * The SweepRunner's store sink streams episodes to disk through this, so
 * a killed campaign keeps every episode that reached a flush instead of
 * losing the whole cell.
 */
class EpisodeSink
{
  public:
    virtual ~EpisodeSink() = default;
    /**
     * `metrics` is the episode's drained observability payload (wall
     * time, per-layer fault attribution; present=false when the
     * MetricsRegistry is disabled). It rides alongside the result rather
     * than inside it so the TaskStats fold never sees it.
     */
    virtual void onEpisode(int index, const EpisodeResult& result,
                           const EpisodeMetrics& metrics) = 0;
};

/** One deployment configuration (platform-agnostic). */
struct CreateConfig
{
    // CREATE techniques.
    bool anomalyDetection = false; //!< AD (Sec. 5.1)
    bool weightRotation = false;   //!< WR on the planner (Sec. 5.2)
    bool voltageScaling = false;   //!< VS on the controller (Sec. 5.3)

    // Error injection.
    InjectionMode mode = InjectionMode::None;
    double uniformBer = 0.0;     //!< Uniform mode: BER for both models
    double plannerBer = -1.0;    //!< optional per-model override (<0: off)
    double controllerBer = -1.0; //!< optional per-model override (<0: off)
    bool injectPlanner = true;
    bool injectController = true;
    /** Substring component filter, e.g. ".attn.k" (empty: everywhere). */
    std::string componentFilter;

    // Operating points (Voltage mode).
    double plannerVoltage = TimingErrorModel::kNominalVoltage;
    double controllerVoltage = TimingErrorModel::kNominalVoltage;

    // Voltage scaling.
    EntropyVoltagePolicy policy; //!< used when voltageScaling
    int vsInterval = 5;          //!< steps between LDO updates (Sec. 6.5)

    // Datapath width (Sec. 6.9) and baseline protection (Sec. 6.10).
    QuantBits bits = QuantBits::Int8;
    Protection protection = Protection::None;

    /**
     * Configure a model's execution context for this deployment point
     * (shared by every backend; was CreateSystem::configureContext).
     */
    void applyTo(ComputeContext& ctx, bool isPlanner) const;

    // --- convenience builders -------------------------------------------
    static CreateConfig clean();
    static CreateConfig uniform(double ber);
    static CreateConfig atVoltage(double plannerV, double controllerV);
    /** Full CREATE stack at given voltages with a VS policy. */
    static CreateConfig fullCreate(double plannerV,
                                   EntropyVoltagePolicy policy,
                                   int interval = 5);
};

/**
 * Platform-generic episode runner + evaluation engine.
 *
 * Concrete backends (MineSystem, ManipSystem, NavSystem) supply the
 * per-episode behavioural simulation and a replicate() factory that rebuilds a
 * bit-identical copy from the deterministic model cache; the base class
 * owns repetition, seeding, aggregation, and (optionally) the parallel
 * fan-out across a worker pool.
 */
class EmbodiedSystem
{
  public:
    /** Default base seed for evaluate(); episode i runs at seed0 + i. */
    static constexpr std::uint64_t kDefaultSeed0 = 1000;

    EmbodiedSystem();
    virtual ~EmbodiedSystem();

    /** Human-readable platform tag, e.g. "jarvis-1" or "openvla+octo". */
    virtual const char* platformName() const = 0;

    /** Task vocabulary of this platform. */
    virtual int numTasks() const = 0;
    virtual const char* taskName(int taskId) const = 0;

    /** Run one episode under a configuration. */
    virtual EpisodeResult runEpisode(int taskId, std::uint64_t seed,
                                     const CreateConfig& cfg) = 0;

    /**
     * Build a functionally identical copy of this system for a parallel
     * worker. Backends share the frozen, immutable model set (FP32
     * weights, cached quantized weights, scales, AD bounds) with their
     * replicas and duplicate only mutable per-worker state, so replica
     * construction is O(1) -- no model reload, recalibration, or
     * re-freeze per worker (see core/shared_models.hpp). prepare() is
     * the serial point that freezes everything a config will touch
     * before episodes fan out.
     */
    virtual std::unique_ptr<EmbodiedSystem> replicate() const = 0;

    /** Paper-scale energy pricing for this platform's models. */
    virtual const PaperEnergyModel& energyModel() const = 0;

    /**
     * Materialize lazily-built state a configuration needs (rotated
     * planner, entropy predictor) before episodes run. Called serially on
     * every worker replica so no model is trained/loaded inside the pool.
     */
    virtual void prepare(const CreateConfig& cfg);

    /**
     * Run `reps` episodes at seeds seed0, seed0+1, ... and return results
     * in episode order (serial, or fanned out when evalThreads() > 1). An
     * optional sink observes each episode as it completes (thread-safe,
     * completion order; see EpisodeSink).
     */
    std::vector<EpisodeResult> runEpisodes(int taskId,
                                           const CreateConfig& cfg, int reps,
                                           std::uint64_t seed0 = kDefaultSeed0,
                                           EpisodeSink* sink = nullptr);

    /** Repeat episodes and aggregate (paper: >=100 repetitions). */
    TaskStats evaluate(int taskId, const CreateConfig& cfg, int reps,
                       std::uint64_t seed0 = kDefaultSeed0);

    /**
     * Number of worker threads evaluate() fans episodes out to. 1 (the
     * default) runs serially on this instance; n > 1 builds a
     * ParallelEvaluator with n bit-identical replicas on first use.
     */
    void setEvalThreads(int n);
    int evalThreads() const { return evalThreads_; }

    /**
     * Whether the parallel path fuses concurrent per-episode GEMMs
     * through a BatchedInferenceQueue (default on). Bit-identity is
     * guaranteed either way (see core/batched_queue.hpp); the switch
     * exists for A/B measurement and debugging. Serial evaluation never
     * batches.
     */
    void setBatchedInference(bool on);
    bool batchedInference() const { return batchedInference_; }

    /**
     * Cross-episode GEMM sink for episode ComputeContexts (null = direct
     * kernel dispatch). Set by ParallelEvaluator on its worker replicas;
     * backends install it on every context they build.
     */
    void setGemmSink(IntGemmSink* sink) { gemmSink_ = sink; }
    IntGemmSink* gemmSink() const { return gemmSink_; }

    /**
     * Fusion counters accumulated by the evaluator's queue across
     * evaluate()/runEpisodes() calls on this system (zeros when the
     * parallel path or batching never engaged).
     */
    BatchStats batchStats() const;

  private:
    int evalThreads_ = 1;
    bool batchedInference_ = true;
    IntGemmSink* gemmSink_ = nullptr;
    std::unique_ptr<ParallelEvaluator> evaluator_;
};

} // namespace create
