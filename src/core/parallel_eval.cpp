#include "core/parallel_eval.hpp"

#include <chrono>
#include <exception>
#include <stdexcept>

namespace create {

int
ParallelEvaluator::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ParallelEvaluator::ParallelEvaluator(const EmbodiedSystem& prototype,
                                     int threads, bool batched)
{
    if (threads <= 0)
        threads = defaultThreads();
    // Replica construction is O(1) (shared frozen model set), but stays
    // on the calling thread: any lazy model build triggered later runs
    // in prepare(), also serially.
    if (batched && threads > 1)
        queue_ = std::make_unique<BatchedInferenceQueue>();
    replicas_.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        replicas_.push_back(prototype.replicate());
        // Replicas share frozen weights by pointer, so concurrent
        // requests group on (wq, k, n) across workers (see
        // core/batched_queue.hpp).
        replicas_.back()->setGemmSink(queue_.get());
    }
    workers_.reserve(replicas_.size());
    for (std::size_t w = 0; w < replicas_.size(); ++w)
        workers_.emplace_back(&ParallelEvaluator::workerLoop, this, w);
}

BatchStats
ParallelEvaluator::batchStats() const
{
    return queue_ ? queue_->stats() : BatchStats{};
}

ParallelEvaluator::~ParallelEvaluator()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (auto& w : workers_)
        w.join();
}

void
ParallelEvaluator::workerLoop(std::size_t workerIdx)
{
    EmbodiedSystem& sys = *replicas_[workerIdx];
    std::uint64_t seenGen = 0;
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workCv_.wait(lock,
                         [&] { return stop_ || jobGen_ != seenGen; });
            if (stop_)
                return;
            seenGen = jobGen_;
            job = job_;
        }
        try {
            // Register as a batch submitter only while holding episodes:
            // the queue dispatches a fused GEMM as soon as every
            // registered worker has submitted, so a drained worker must
            // deregister (RAII -- exception-safe) or it would stall its
            // peers into the batch-window timeout.
            BatchedInferenceQueue::WorkerScope scope(queue_.get());
            for (;;) {
                const int i = nextEpisode_.fetch_add(1);
                if (i >= job.reps)
                    break;
                EpisodeResult& slot = (*job.out)[static_cast<std::size_t>(i)];
                // Each episode runs wholly on this worker thread (the
                // fused-batch kernel may execute on a peer, but only this
                // thread's faultyLinear calls record here), so the
                // thread-local registry attributes counters to exactly
                // this episode.
                MetricsRegistry& reg = MetricsRegistry::tls();
                reg.beginEpisode();
                const auto t0 = std::chrono::steady_clock::now();
                slot = sys.runEpisode(
                    job.taskId, job.seed0 + static_cast<std::uint64_t>(i),
                    *job.cfg);
                const double wallMs =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                if (job.sink)
                    job.sink->onEpisode(i, slot, reg.endEpisode(wallMs));
            }
        } catch (const std::exception& e) {
            std::lock_guard<std::mutex> lock(mu_);
            if (workerError_.empty())
                workerError_ = e.what();
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (++workersDone_ == static_cast<int>(workers_.size()))
                doneCv_.notify_all();
        }
    }
}

std::vector<EpisodeResult>
ParallelEvaluator::runEpisodes(int taskId, const CreateConfig& cfg, int reps,
                               std::uint64_t seed0, EpisodeSink* sink)
{
    // Materialize config-dependent lazy state (rotated planner, entropy
    // predictor) serially before fanning out, so workers never train or
    // load models concurrently.
    for (auto& replica : replicas_)
        replica->prepare(cfg);

    std::vector<EpisodeResult> results(
        static_cast<std::size_t>(reps < 0 ? 0 : reps));
    {
        std::unique_lock<std::mutex> lock(mu_);
        job_ = Job{taskId, &cfg, reps, seed0, &results, sink};
        nextEpisode_.store(0);
        workersDone_ = 0;
        workerError_.clear();
        ++jobGen_;
        workCv_.notify_all();
        doneCv_.wait(lock, [&] {
            return workersDone_ == static_cast<int>(workers_.size());
        });
        if (!workerError_.empty())
            throw std::runtime_error("ParallelEvaluator worker failed: " +
                                     workerError_);
    }
    return results;
}

TaskStats
ParallelEvaluator::evaluate(int taskId, const CreateConfig& cfg, int reps,
                            std::uint64_t seed0)
{
    return aggregate(runEpisodes(taskId, cfg, reps, seed0),
                     replicas_.front()->energyModel());
}

} // namespace create
