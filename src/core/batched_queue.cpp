#include "core/batched_queue.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/metrics.hpp"
#include "hw/kernel_dispatch.hpp"

namespace create {

BatchStats&
BatchStats::operator+=(const BatchStats& o)
{
    requests += o.requests;
    groups += o.groups;
    maxBatch = std::max(maxBatch, o.maxBatch);
    peakWorkers = std::max(peakWorkers, o.peakWorkers);
    windowExpiries += o.windowExpiries;
    inlineRuns += o.inlineRuns;
    return *this;
}

BatchedInferenceQueue::BatchedInferenceQueue(int batchWindowUs)
{
    if (batchWindowUs < 0) {
        batchWindowUs = 200;
        if (const char* env = std::getenv("CREATE_BATCH_WINDOW_US")) {
            const long v = std::strtol(env, nullptr, 10);
            if (v >= 0)
                batchWindowUs = static_cast<int>(v);
        }
    }
    window_ = std::chrono::microseconds(batchWindowUs);
}

void
BatchedInferenceQueue::beginWorker()
{
    std::lock_guard<std::mutex> lk(mu_);
    ++active_;
    peakWorkers_ = std::max(peakWorkers_, active_);
}

void
BatchedInferenceQueue::endWorker()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        --active_;
    }
    // Thresholds shrank ("one request per registered worker" may now
    // hold); wake waiters to re-evaluate.
    cv_.notify_all();
}

void
BatchedInferenceQueue::gemm(const std::int8_t* xq, std::int64_t m,
                            std::int64_t k, const std::int8_t* wq,
                            std::int64_t n, std::int32_t* acc)
{
    std::unique_lock<std::mutex> lk(mu_);
    ++requests_;
    MetricsRegistry::recordQueueRequest();
    if (active_ <= 1) {
        // No concurrent submitters possible: execute inline. (This is
        // also the serial-evaluation degenerate case.)
        ++groupsRun_;
        ++inlineRuns_;
        maxBatch_ = std::max<std::uint64_t>(maxBatch_, 1);
        lk.unlock();
        MetricsRegistry::recordQueueInline();
        MetricsRegistry::recordQueueGroup(false);
        simd::active().intGemm(xq, m, k, wq, n, acc);
        return;
    }

    Request req{xq, m, acc, false};
    const Key key{static_cast<const void*>(wq), k, n};
    std::shared_ptr<Group>& slot = pending_[key];
    if (!slot) {
        slot = std::make_shared<Group>();
        slot->key = key;
    }
    const std::shared_ptr<Group> g = slot; // keep alive across pop
    g->reqs.push_back(&req);
    ++inflight_;
    cv_.notify_all(); // arrival may complete someone's "group full"

    bool timedOut = false;
    while (!req.done) {
        if (!g->popped) {
            const bool groupFull =
                static_cast<int>(g->reqs.size()) >= active_;
            // Every registered worker is inside gemm(): nobody else can
            // join any group, so waiting longer buys nothing.
            const bool everyoneHere = inflight_ >= active_;
            if (groupFull || everyoneHere || timedOut) {
                // Pure expiry: the window ran out while more submitters
                // were still possible -- the tuning-relevant stall case.
                if (timedOut && !groupFull && !everyoneHere)
                    ++windowExpiries_;
                executeGroup(lk, g, k, n,
                             timedOut && !groupFull && !everyoneHere);
                continue;
            }
        }
        timedOut =
            cv_.wait_for(lk, window_) == std::cv_status::timeout;
    }
    --inflight_;
}

void
BatchedInferenceQueue::executeGroup(std::unique_lock<std::mutex>& lk,
                                    const std::shared_ptr<Group>& g,
                                    std::int64_t k, std::int64_t n,
                                    bool windowExpired)
{
    g->popped = true;
    pending_.erase(g->key);
    ++groupsRun_;
    maxBatch_ = std::max(maxBatch_, static_cast<std::uint64_t>(g->reqs.size()));
    // Snapshot: owners cannot leave while not done, so the Request
    // pointers stay valid without the lock.
    const std::vector<Request*> reqs = g->reqs;
    const std::int8_t* wq =
        static_cast<const std::int8_t*>(std::get<0>(g->key));
    lk.unlock();
    MetricsRegistry::recordQueueGroup(windowExpired);

    if (reqs.size() == 1) {
        // Solo group: run on the caller's buffers, no staging copy.
        Request* r = reqs.front();
        simd::active().intGemm(r->xq, r->m, k, wq, n, r->acc);
    } else {
        // Fuse: concatenate the m-rows of every request, one kernel call,
        // scatter each slice back with memcpy. The sink contract requires
        // zero-filled acc (see IntGemmSink), so copying the staged result
        // equals accumulating onto zeros bit for bit while halving the
        // scatter's memory traffic. Staging is thread_local so concurrent
        // executions of different groups never share buffers.
        thread_local std::vector<std::int8_t> xbuf;
        thread_local std::vector<std::int32_t> abuf;
        std::int64_t mTotal = 0;
        for (const Request* r : reqs)
            mTotal += r->m;
        xbuf.resize(static_cast<std::size_t>(mTotal * k));
        abuf.assign(static_cast<std::size_t>(mTotal * n), 0);
        std::int64_t row = 0;
        for (const Request* r : reqs) {
            std::memcpy(xbuf.data() + row * k, r->xq,
                        static_cast<std::size_t>(r->m * k));
            row += r->m;
        }
        simd::active().intGemm(xbuf.data(), mTotal, k, wq, n, abuf.data());
        row = 0;
        for (Request* r : reqs) {
            std::memcpy(r->acc, abuf.data() + row * n,
                        static_cast<std::size_t>(r->m * n) *
                            sizeof(std::int32_t));
            row += r->m;
        }
    }

    lk.lock();
    for (Request* r : reqs)
        r->done = true;
    cv_.notify_all();
}

BatchStats
BatchedInferenceQueue::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    BatchStats s;
    s.requests = requests_;
    s.groups = groupsRun_;
    s.maxBatch = maxBatch_;
    s.peakWorkers = peakWorkers_;
    s.windowExpiries = windowExpiries_;
    s.inlineRuns = inlineRuns_;
    return s;
}

void
BatchedInferenceQueue::resetStats()
{
    std::lock_guard<std::mutex> lk(mu_);
    requests_ = 0;
    groupsRun_ = 0;
    maxBatch_ = 0;
    windowExpiries_ = 0;
    inlineRuns_ = 0;
    peakWorkers_ = active_;
}

} // namespace create
