#pragma once

/**
 * @file
 * MineSystem: the Minecraft (JARVIS-1 stand-in) backend of the
 * platform-generic EmbodiedSystem facade.
 *
 * Historically this class was called CreateSystem and was the only entry
 * point into the CREATE stack; the deployment-configuration struct
 * (CreateConfig) and the episode-repetition engine now live in
 * core/embodied_system.hpp so the manipulation platforms share them. The
 * CreateSystem alias is kept for source compatibility with the original
 * benches/tests.
 */

#include <memory>

#include "core/embodied_system.hpp"
#include "core/shared_models.hpp"

namespace create {

/** The Minecraft / JARVIS-1 stand-in stack. */
class MineSystem : public EmbodiedSystem
{
  public:
    explicit MineSystem(bool verbose = true);

    // --- EmbodiedSystem interface ----------------------------------------
    const char* platformName() const override { return "jarvis-1"; }
    int numTasks() const override { return kNumMineTasks; }
    const char* taskName(int taskId) const override
    {
        return mineTaskName(static_cast<MineTask>(taskId));
    }
    EpisodeResult runEpisode(int taskId, std::uint64_t seed,
                             const CreateConfig& cfg) override;
    std::unique_ptr<EmbodiedSystem> replicate() const override;
    const PaperEnergyModel& energyModel() const override { return energy_; }
    void prepare(const CreateConfig& cfg) override;

    // --- typed convenience API (source-compatible with CreateSystem) -----
    using EmbodiedSystem::evaluate;
    using EmbodiedSystem::runEpisodes;

    /** Run one episode under a configuration. */
    EpisodeResult runEpisode(MineTask task, std::uint64_t seed,
                             const CreateConfig& cfg)
    {
        return runEpisode(static_cast<int>(task), seed, cfg);
    }

    /** Repeat episodes and aggregate (paper: >=100 repetitions). */
    TaskStats evaluate(MineTask task, const CreateConfig& cfg, int reps,
                       std::uint64_t seed0 = kDefaultSeed0)
    {
        return evaluate(static_cast<int>(task), cfg, reps, seed0);
    }

    /** Planner access; builds the rotated variant lazily. */
    PlannerModel& planner(bool rotated);
    ControllerModel& controller() { return *shared_->controller; }
    EntropyPredictor& predictor() { return *shared_->predictor; }
    AgentConfig& agentConfig() { return agentCfg_; }

  private:
    /** Replica constructor: shares the frozen model set. */
    MineSystem(std::shared_ptr<SharedModelSet> shared, AgentConfig agentCfg);

    std::shared_ptr<SharedModelSet> shared_;
    PaperEnergyModel energy_;
    AgentConfig agentCfg_;
};

/** Historical name of the Minecraft backend. */
using CreateSystem = MineSystem;

} // namespace create
