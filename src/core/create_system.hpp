#pragma once

/**
 * @file
 * CreateSystem: the top-level facade tying the whole CREATE stack together.
 *
 * A CreateConfig describes one deployment point: the injection model
 * (uniform BER for characterization, voltage-derived for evaluation), the
 * per-model operating voltages, and which CREATE techniques are active
 * (AD at the circuit level, WR at the model level, VS at the application
 * level) or which baseline protection replaces them (DMR / ThUnderVolt /
 * ABFT, Sec. 6.10). evaluate() repeats episodes and aggregates success
 * rate, average steps, effective voltage, and paper-scale energy.
 */

#include <memory>

#include "agent/metrics.hpp"
#include "core/voltage_policy.hpp"

namespace create {

/** One deployment configuration. */
struct CreateConfig
{
    // CREATE techniques.
    bool anomalyDetection = false; //!< AD (Sec. 5.1)
    bool weightRotation = false;   //!< WR on the planner (Sec. 5.2)
    bool voltageScaling = false;   //!< VS on the controller (Sec. 5.3)

    // Error injection.
    InjectionMode mode = InjectionMode::None;
    double uniformBer = 0.0;     //!< Uniform mode: BER for both models
    double plannerBer = -1.0;    //!< optional per-model override (<0: off)
    double controllerBer = -1.0; //!< optional per-model override (<0: off)
    bool injectPlanner = true;
    bool injectController = true;
    /** Substring component filter, e.g. ".attn.k" (empty: everywhere). */
    std::string componentFilter;

    // Operating points (Voltage mode).
    double plannerVoltage = TimingErrorModel::kNominalVoltage;
    double controllerVoltage = TimingErrorModel::kNominalVoltage;

    // Voltage scaling.
    EntropyVoltagePolicy policy; //!< used when voltageScaling
    int vsInterval = 5;          //!< steps between LDO updates (Sec. 6.5)

    // Datapath width (Sec. 6.9) and baseline protection (Sec. 6.10).
    QuantBits bits = QuantBits::Int8;
    Protection protection = Protection::None;

    // --- convenience builders -------------------------------------------
    static CreateConfig clean();
    static CreateConfig uniform(double ber);
    static CreateConfig atVoltage(double plannerV, double controllerV);
    /** Full CREATE stack at given voltages with a VS policy. */
    static CreateConfig fullCreate(double plannerV,
                                   EntropyVoltagePolicy policy,
                                   int interval = 5);
};

/** Top-level runner for the Minecraft (JARVIS-1 stand-in) stack. */
class CreateSystem
{
  public:
    explicit CreateSystem(bool verbose = true);

    /** Run one episode under a configuration. */
    EpisodeResult runEpisode(MineTask task, std::uint64_t seed,
                             const CreateConfig& cfg);

    /** Repeat episodes and aggregate (paper: >=100 repetitions). */
    TaskStats evaluate(MineTask task, const CreateConfig& cfg, int reps,
                       std::uint64_t seed0 = 1000);

    /** Planner access; builds the rotated variant lazily. */
    PlannerModel& planner(bool rotated);
    ControllerModel& controller() { return *models_.controller; }
    EntropyPredictor& predictor() { return *models_.predictor; }
    const PaperEnergyModel& energyModel() const { return energy_; }
    AgentConfig& agentConfig() { return agentCfg_; }

  private:
    void configureContext(ComputeContext& ctx, bool isPlanner,
                          const CreateConfig& cfg) const;

    MineModels models_;
    std::unique_ptr<PlannerModel> rotatedPlanner_;
    PaperEnergyModel energy_;
    AgentConfig agentCfg_;
};

} // namespace create
