#pragma once

/**
 * @file
 * ComputeContext: the per-run "accelerator state" that every quantized
 * GEMM/conv in the system executes under.
 *
 * It bundles what the paper treats as deployment configuration:
 *  - error-injection mode (none / uniform BER / voltage-derived LUT),
 *  - the current operating voltage (driven by the LDO under CREATE's
 *    autonomy-adaptive voltage scaling),
 *  - whether anomaly-detection-and-clearance units are active,
 *  - datapath quantization width (INT8 default, INT4 for Sec. 6.9),
 *  - a component filter so injection can target a single network component
 *    (Fig. 5(e)-(h) inject into K or O only),
 *  - an energy meter accumulating MACs weighted by V^2 per domain
 *    (planner / controller / predictor), from which effective voltage and
 *    computational energy are derived (Sec. 6.1 "effective voltage").
 */

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fault/error_model.hpp"
#include "quant/quant.hpp"

namespace create {

/** Which error model corrupts accumulator outputs. */
enum class InjectionMode { None, Uniform, Voltage };

/**
 * Datapath protection scheme (Sec. 6.10 baselines).
 *
 * None        - plain pipeline (CREATE's AD is a separate switch).
 * Dmr         - dual modular redundancy: every GEMM executed twice,
 *               mismatches trigger re-execution (>=2x energy).
 * ThunderVolt - per-PE timing-error detection with result bypass: faulty
 *               outputs are dropped to zero ("neuron pruning").
 * Abft        - checksum-based detection with whole-GEMM recomputation
 *               until clean (bounded retries).
 */
enum class Protection { None, Dmr, ThunderVolt, Abft };

/** Coarse model domains for energy/bookkeeping separation. */
enum class Domain { Planner = 0, Controller = 1, Predictor = 2, Other = 3 };
constexpr int kNumDomains = 4;

/** Per-domain MAC/energy accounting. */
struct DomainUsage
{
    double macs = 0.0;              //!< simulated multiply-accumulates
    double v2WeightedMacs = 0.0;    //!< sum of macs * (V/Vnom)^2
    std::uint64_t gemmCalls = 0;
    std::uint64_t bitFlips = 0;     //!< injected flips
    std::uint64_t anomaliesCleared = 0; //!< outputs clamped by AD
};

/** Accumulates usage per domain; supports effective-voltage queries. */
class EnergyMeter
{
  public:
    void addGemm(Domain d, double macs, double voltage);
    void addFlips(Domain d, std::uint64_t flips);
    void addAnomalies(Domain d, std::uint64_t cleared);

    const DomainUsage& usage(Domain d) const;
    DomainUsage total() const;

    /**
     * Effective voltage: the constant voltage with the same total V^2-
     * weighted compute energy (paper Sec. 6.1). Returns nominal if the
     * domain did no work.
     */
    double effectiveVoltage(Domain d) const;

    void reset();

  private:
    std::array<DomainUsage, kNumDomains> perDomain_{};
};

/**
 * Reusable scratch buffers for the inference hot path.
 *
 * One workspace lives in each ComputeContext, and contexts are never
 * shared across threads (each episode builds its own), so the buffers are
 * thread-safe by construction. Buffers grow to the high-water mark of the
 * layers run under the context and are reused for every subsequent GEMM /
 * attention call, making the steady-state pipeline allocation-free.
 */
struct GemmWorkspace
{
    std::vector<std::int8_t> xq;        //!< quantized activations
    std::vector<std::int32_t> acc;      //!< working accumulators
    std::vector<std::int32_t> cleanAcc; //!< clean product kept for re-execution
    std::vector<std::int32_t> acc2;     //!< DMR duplicate execution
    std::vector<std::int32_t> acc3;     //!< DMR arbitration execution
    std::vector<std::size_t> positions; //!< flip positions (ThunderVolt/ABFT)
    std::vector<float> attnK;           //!< packed K^T slab (headDim x tokens)
    std::vector<float> attnV;           //!< packed V slab (tokens x headDim)
    std::vector<float> attnScores;      //!< per-head score/probability matrix
};

/**
 * Sink for the integer-GEMM stage of faultyLinear.
 *
 * When a context carries a sink, the hot path hands the (already
 * quantized) GEMM to it instead of calling the dispatched kernel
 * directly. The cross-episode BatchedInferenceQueue in src/core
 * implements this to fuse concurrent per-episode requests that share a
 * frozen weight matrix into one wide kernel call. The contract is
 * create::intGemm over a zero-filled `acc`: callers must pass acc
 * cleared to zero, and the sink leaves exactly the int32 GEMM sums
 * there (it may accumulate in staging and memcpy the slice back --
 * identical to += onto zeros, bit for bit), so routing through a sink
 * can never change results.
 */
class IntGemmSink
{
  public:
    virtual ~IntGemmSink() = default;
    virtual void gemm(const std::int8_t* xq, std::int64_t m, std::int64_t k,
                      const std::int8_t* wq, std::int64_t n,
                      std::int32_t* acc) = 0;
};

/** Execution context threaded through every quantized layer. */
class ComputeContext
{
  public:
    explicit ComputeContext(std::uint64_t seed = 0xC0FFEEull);

    // --- configuration -------------------------------------------------
    bool anomalyDetection = false;      //!< AD clamp at the output stage
    Protection protection = Protection::None; //!< baseline scheme
    QuantBits bits = QuantBits::Int8;
    bool calibrating = false;           //!< clean pass recording absmax stats
    Domain domain = Domain::Other;
    /** Substring filter on component tags; empty = inject everywhere. */
    std::string componentFilter;

    // --- runtime state --------------------------------------------------
    Rng rng;
    EnergyMeter meter;
    GemmWorkspace ws; //!< hot-path scratch buffers (never shared across threads)
    /** Optional cross-episode GEMM batcher (not owned; null = direct). */
    IntGemmSink* gemmSink = nullptr;

    /** Disable injection (clean INT8 execution). */
    void setCleanMode();

    /** Switch to the uniform bit-flip model at the given BER. */
    void setUniformBer(double ber);

    /** Switch to the voltage-derived timing-error model. */
    void setVoltageMode();

    /** Set operating voltage; refreshes the cached per-bit rate LUT. */
    void setVoltage(double v);

    InjectionMode mode() const { return mode_; }
    double voltage() const { return voltage_; }
    double uniformBer() const { return uniformBer_; }

    /** Per-bit flip rates for the active mode (all zero when mode==None). */
    const std::vector<double>& activeBitRates() const { return bitRates_; }

    /** Whether the filter allows injection into a tagged component. */
    bool injectionEnabledFor(const std::string& tag) const;

  private:
    void refreshRates();

    InjectionMode mode_ = InjectionMode::None;
    double uniformBer_ = 0.0;
    double voltage_ = TimingErrorModel::kNominalVoltage;
    std::vector<double> bitRates_;
};

} // namespace create
