#include "hw/compute_context.hpp"

#include <cmath>

namespace create {

void
EnergyMeter::addGemm(Domain d, double macs, double voltage)
{
    auto& u = perDomain_[static_cast<std::size_t>(d)];
    const double vr = voltage / TimingErrorModel::kNominalVoltage;
    u.macs += macs;
    u.v2WeightedMacs += macs * vr * vr;
    u.gemmCalls += 1;
}

void
EnergyMeter::addFlips(Domain d, std::uint64_t flips)
{
    perDomain_[static_cast<std::size_t>(d)].bitFlips += flips;
}

void
EnergyMeter::addAnomalies(Domain d, std::uint64_t cleared)
{
    perDomain_[static_cast<std::size_t>(d)].anomaliesCleared += cleared;
}

const DomainUsage&
EnergyMeter::usage(Domain d) const
{
    return perDomain_[static_cast<std::size_t>(d)];
}

DomainUsage
EnergyMeter::total() const
{
    DomainUsage t;
    for (const auto& u : perDomain_) {
        t.macs += u.macs;
        t.v2WeightedMacs += u.v2WeightedMacs;
        t.gemmCalls += u.gemmCalls;
        t.bitFlips += u.bitFlips;
        t.anomaliesCleared += u.anomaliesCleared;
    }
    return t;
}

double
EnergyMeter::effectiveVoltage(Domain d) const
{
    const auto& u = perDomain_[static_cast<std::size_t>(d)];
    if (u.macs <= 0.0)
        return TimingErrorModel::kNominalVoltage;
    return TimingErrorModel::kNominalVoltage * std::sqrt(u.v2WeightedMacs / u.macs);
}

void
EnergyMeter::reset()
{
    perDomain_.fill(DomainUsage{});
}

ComputeContext::ComputeContext(std::uint64_t seed) : rng(seed)
{
    refreshRates();
}

void
ComputeContext::setCleanMode()
{
    mode_ = InjectionMode::None;
    refreshRates();
}

void
ComputeContext::setVoltage(double v)
{
    voltage_ = v;
    refreshRates();
}

void
ComputeContext::setVoltageMode()
{
    mode_ = InjectionMode::Voltage;
    refreshRates();
}

void
ComputeContext::setUniformBer(double ber)
{
    mode_ = InjectionMode::Uniform;
    uniformBer_ = ber;
    refreshRates();
}

bool
ComputeContext::injectionEnabledFor(const std::string& tag) const
{
    if (componentFilter.empty())
        return true;
    return tag.find(componentFilter) != std::string::npos;
}

void
ComputeContext::refreshRates()
{
    bitRates_.assign(kAccumulatorBits, 0.0);
    switch (mode_) {
      case InjectionMode::None:
        break;
      case InjectionMode::Uniform:
        for (auto& r : bitRates_)
            r = uniformBer_;
        break;
      case InjectionMode::Voltage: {
        const TimingErrorModel tm(voltage_);
        bitRates_ = tm.bitRates();
        break;
      }
    }
}

} // namespace create
