#pragma once

/**
 * @file
 * Internal per-ISA kernel entry points behind create::simd dispatch.
 *
 * Each family lives in its own translation unit so CMake can attach the
 * matching -m<isa> flags to exactly one file (the rest of the library
 * stays at the baseline architecture). Every function here implements
 * the contract documented on create::simd::KernelTable and is
 * bit-identical to the scalar kernels; the AVX2/AVX-512 TUs fall back to
 * delegating wrappers when the compiler cannot target the ISA, and
 * report that through their *Compiled() probes so the dispatcher never
 * advertises a tier that is secretly scalar.
 */

#include <cstdint>

namespace create::simd::detail {

// -- portable scalar (always real) ----------------------------------------
void intGemmScalar(const std::int8_t* xq, std::int64_t m, std::int64_t k,
                   const std::int8_t* wq, std::int64_t n, std::int32_t* acc);
void quantizeScalar(const float* src, std::int64_t n, float invScale, int lim,
                    std::int8_t* out);
float absMaxScalar(const float* src, std::int64_t n);

// -- SSE2 (golden reference; real whenever __SSE2__, i.e. any x86-64) -----
bool sse2KernelsCompiled();
void intGemmSse2(const std::int8_t* xq, std::int64_t m, std::int64_t k,
                 const std::int8_t* wq, std::int64_t n, std::int32_t* acc);
void quantizeSse2(const float* src, std::int64_t n, float invScale, int lim,
                  std::int8_t* out);
float absMaxSse2(const float* src, std::int64_t n);

// -- AVX2 -----------------------------------------------------------------
bool avx2KernelsCompiled();
void intGemmAvx2(const std::int8_t* xq, std::int64_t m, std::int64_t k,
                 const std::int8_t* wq, std::int64_t n, std::int32_t* acc);
void quantizeAvx2(const float* src, std::int64_t n, float invScale, int lim,
                  std::int8_t* out);
float absMaxAvx2(const float* src, std::int64_t n);

// -- AVX-512 VNNI ---------------------------------------------------------
bool avx512KernelsCompiled();
void intGemmAvx512(const std::int8_t* xq, std::int64_t m, std::int64_t k,
                   const std::int8_t* wq, std::int64_t n, std::int32_t* acc);
void quantizeAvx512(const float* src, std::int64_t n, float invScale, int lim,
                    std::int8_t* out);
float absMaxAvx512(const float* src, std::int64_t n);

} // namespace create::simd::detail
