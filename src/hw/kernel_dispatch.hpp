#pragma once

/**
 * @file
 * Runtime SIMD kernel dispatch for the integer inference hot path.
 *
 * The three data-plane kernels every episode spends its cycles in --
 * intGemm (int8 GEMM into int32 accumulators), activation quantization,
 * and absmax calibration scans -- exist in one variant per instruction
 * set: a portable scalar kernel, the SSE2 `pmaddwd` kernel (the golden
 * reference the exact-equality test suite is written against), an AVX2
 * `pmaddwd` kernel, and an AVX-512 VNNI (`vpdpwssd`) kernel. CPUID
 * detection at first use picks the widest variant the host supports; the
 * `CREATE_FORCE_ISA` environment variable (scalar | sse2 | avx2 |
 * avx512vnni) pins the choice for testing and for the CI leg that keeps
 * the SSE2 fallback exercised on AVX-capable runners.
 *
 * Every variant is bit-identical by construction: integer accumulation
 * is exact in any summation order, quantization rounds with the same
 * round-to-nearest-even the scalar `nearbyint` path uses (cvtps2dq
 * rounds per the default MXCSR), and max-reduction is order-independent.
 * The golden suite (tests/test_hotpath_golden.cpp) enforces this with
 * exact `memcmp` across every variant the host can run, so switching
 * ISAs can never change an episode, a ledger, or a campaign result.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace create::simd {

/** Instruction-set tiers of the dispatched kernel family (ascending). */
enum class Isa
{
    Scalar = 0,     //!< portable C++ (any architecture)
    Sse2 = 1,       //!< paired-K pmaddwd (the golden reference kernel)
    Avx2 = 2,       //!< 16-column pmaddwd, 4-row register blocking
    Avx512Vnni = 3, //!< vpdpwssd, 32-column x 4-row register blocking
};

/** One ISA's kernel set. All variants produce bit-identical results. */
struct KernelTable
{
    Isa isa = Isa::Scalar;

    /** acc(MxN) += xq(MxK) @ wq(KxN), exact int32 accumulation. */
    void (*intGemm)(const std::int8_t* xq, std::int64_t m, std::int64_t k,
                    const std::int8_t* wq, std::int64_t n,
                    std::int32_t* acc) = nullptr;

    /**
     * out[i] = clamp(nearbyint(src[i] * invScale), -lim, lim) as int8,
     * round-to-nearest-even (the default FP environment).
     */
    void (*quantize)(const float* src, std::int64_t n, float invScale,
                     int lim, std::int8_t* out) = nullptr;

    /** max_i |src[i]| (0 for n == 0); exact (max is order-independent). */
    float (*absMax)(const float* src, std::int64_t n) = nullptr;
};

/**
 * The active kernel table. First call resolves CPUID detection and the
 * CREATE_FORCE_ISA override; afterwards this is one atomic load.
 */
const KernelTable& active();

/** ISA of the active table. */
Isa activeIsa();

/**
 * Select a tier at runtime (used by the per-ISA golden tests and
 * benchmarks). Returns false -- and leaves the active table unchanged --
 * when the host cannot run `isa`. Not safe to call concurrently with
 * in-flight kernels; tests switch between suites, never inside one.
 */
bool setActive(Isa isa);

/** Every tier this host supports, ascending (always contains Scalar). */
std::vector<Isa> supported();

/** The widest supported tier (what detection picks absent an override). */
Isa best();

/** Canonical lowercase name: "scalar" / "sse2" / "avx2" / "avx512vnni". */
const char* isaName(Isa isa);

/** Parse an ISA name (accepts "avx512" for avx512vnni). */
bool parseIsa(const std::string& name, Isa* out);

/**
 * Apply a CREATE_FORCE_ISA-style value: parse it and make it active.
 * Unknown names and unsupported tiers warn on stderr and select best().
 * Returns the ISA actually selected. (The env variable itself is applied
 * automatically on first use; this entry point exists so tests can
 * exercise the override logic in-process.)
 */
Isa applyForceIsa(const std::string& value);

/**
 * One-line ISA report for bench/driver context output, e.g.
 * "isa=avx512vnni (supported: scalar sse2 avx2 avx512vnni; forced: no)".
 */
std::string report();

} // namespace create::simd
