#include "hw/faulty_gemm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "fault/injector.hpp"
#include "tensor/ops.hpp"

namespace create {

namespace {

/** w with a per-output-channel scale folded in (freeze/calibration only). */
Tensor
scaledWeight(const Tensor& w, const Tensor& outScale)
{
    Tensor weff = w;
    for (std::int64_t i = 0; i < weff.dim(0); ++i)
        for (std::int64_t j = 0; j < weff.dim(1); ++j)
            weff.at(i, j) *= outScale[j];
    return weff;
}

} // namespace

void
QuantGemmState::freeze(const Tensor& w, const Tensor* bias,
                       const Tensor* outScale, QuantBits bits)
{
    // Activation scale: calibrated absmax when available; a per-call
    // fallback would break the fixed-scale-hardware assumption, so we use
    // a generous default when a layer was never calibrated.
    const float inMax = inObs.seeded() ? inObs.absMax() : 8.0f;
    inQ = QuantParams::fromAbsMax(inMax, bits);
    // The deployed weight carries the structural channel scale (planted
    // LLM outliers); folding it here means steady-state calls never
    // rebuild the scaled FP32 weight.
    if (outScale) {
        const Tensor weff = scaledWeight(w, *outScale);
        wQ = QuantParams::fromAbsMax(weff.absMax(), bits);
        wq = quantize(weff, wQ);
    } else {
        wQ = QuantParams::fromAbsMax(w.absMax(), bits);
        wq = quantize(w, wQ);
    }
    hasBias = bias != nullptr;
    biasEff.clear();
    if (bias) {
        biasEff.resize(static_cast<std::size_t>(bias->numel()));
        for (std::int64_t j = 0; j < bias->numel(); ++j)
            biasEff[static_cast<std::size_t>(j)] =
                outScale ? (*bias)[j] * (*outScale)[j] : (*bias)[j];
    }
    // AD bound: calibrated clean-output absmax with a small margin for
    // quantization noise. Unknown (never calibrated) => 0 => AD disabled
    // for this layer.
    outBound = outObs.seeded() ? outObs.absMax() * 1.05f : 0.0f;
    frozen = true;
}

void
QuantGemmState::invalidate()
{
    frozen = false;
    wq.clear();
    biasEff.clear();
    hasBias = false;
    inObs.reset();
    outObs.reset();
    outBound = 0.0f;
}

void
intGemm(const std::int8_t* xq, std::int64_t m, std::int64_t k,
        const std::int8_t* wq, std::int64_t n, std::int32_t* acc)
{
    // Integer accumulation is exact, so any summation order yields the
    // same accumulators; that freedom is what lets the SIMD kernel below
    // pair K iterations (pmaddwd) while staying bit-identical to the
    // scalar kernel (which the golden-reference test suite asserts).
#if defined(__SSE2__)
    // SSE2 micro-kernel: 8 output columns per step, two K rows fused per
    // multiply. Weights of rows kk/kk+1 are interleaved bytewise and
    // sign-extended to int16 pairs (w[kk][j], w[kk+1][j]); pmaddwd against
    // the broadcast activation pair (x[kk], x[kk+1]) then produces the
    // per-column two-term partial sums directly in int32 lanes.
    const __m128i vzero = _mm_setzero_si128();
    for (std::int64_t i = 0; i < m; ++i) {
        const std::int8_t* xrow = xq + i * k;
        std::int32_t* crow = acc + i * n;
        std::int64_t j0 = 0;
        for (; j0 + 8 <= n; j0 += 8) {
            __m128i acc0 = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(crow + j0));
            __m128i acc1 = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(crow + j0 + 4));
            std::int64_t kk = 0;
            for (; kk + 2 <= k; kk += 2) {
                const std::int32_t x0 = xrow[kk], x1 = xrow[kk + 1];
                if ((x0 | x1) == 0)
                    continue;
                const std::uint32_t pair =
                    static_cast<std::uint16_t>(x0) |
                    (static_cast<std::uint32_t>(static_cast<std::uint16_t>(x1))
                     << 16);
                const __m128i xpair =
                    _mm_set1_epi32(static_cast<std::int32_t>(pair));
                const __m128i w0 = _mm_loadl_epi64(
                    reinterpret_cast<const __m128i*>(wq + kk * n + j0));
                const __m128i w1 = _mm_loadl_epi64(
                    reinterpret_cast<const __m128i*>(wq + (kk + 1) * n + j0));
                const __m128i inter = _mm_unpacklo_epi8(w0, w1);
                const __m128i lo16 =
                    _mm_srai_epi16(_mm_unpacklo_epi8(vzero, inter), 8);
                const __m128i hi16 =
                    _mm_srai_epi16(_mm_unpackhi_epi8(vzero, inter), 8);
                acc0 = _mm_add_epi32(acc0, _mm_madd_epi16(lo16, xpair));
                acc1 = _mm_add_epi32(acc1, _mm_madd_epi16(hi16, xpair));
            }
            if (kk < k) { // odd-K tail: pair the last row with zero
                const std::int32_t x0 = xrow[kk];
                if (x0 != 0) {
                    const __m128i xpair = _mm_set1_epi32(
                        static_cast<std::uint16_t>(x0));
                    const __m128i w0 = _mm_loadl_epi64(
                        reinterpret_cast<const __m128i*>(wq + kk * n + j0));
                    const __m128i inter = _mm_unpacklo_epi8(w0, vzero);
                    const __m128i lo16 =
                        _mm_srai_epi16(_mm_unpacklo_epi8(vzero, inter), 8);
                    const __m128i hi16 =
                        _mm_srai_epi16(_mm_unpackhi_epi8(vzero, inter), 8);
                    acc0 = _mm_add_epi32(acc0, _mm_madd_epi16(lo16, xpair));
                    acc1 = _mm_add_epi32(acc1, _mm_madd_epi16(hi16, xpair));
                }
            }
            _mm_storeu_si128(reinterpret_cast<__m128i*>(crow + j0), acc0);
            _mm_storeu_si128(reinterpret_cast<__m128i*>(crow + j0 + 4), acc1);
        }
        for (; j0 < n; ++j0) { // ragged column tail
            std::int32_t a = crow[j0];
            for (std::int64_t kk = 0; kk < k; ++kk) {
                const std::int32_t xv = xrow[kk];
                if (xv != 0)
                    a += xv * static_cast<std::int32_t>(wq[kk * n + j0]);
            }
            crow[j0] = a;
        }
    }
#else
    // Scalar fallback: K-tiled, 8-column register-blocked micro-kernel
    // (each (row, K-tile, column-block) round keeps its 8 partial sums in
    // int32 registers instead of re-reading the accumulator row per k).
    constexpr std::int64_t kNr = 8;   //!< columns per register block
    constexpr std::int64_t kKc = 256; //!< K tile (256 rows x 8 cols = 2 KiB)
    for (std::int64_t i = 0; i < m; ++i) {
        const std::int8_t* xrow = xq + i * k;
        std::int32_t* crow = acc + i * n;
        for (std::int64_t k0 = 0; k0 < k; k0 += kKc) {
            const std::int64_t kEnd = std::min(k, k0 + kKc);
            std::int64_t j0 = 0;
            for (; j0 + kNr <= n; j0 += kNr) {
                std::int32_t a0 = crow[j0 + 0], a1 = crow[j0 + 1];
                std::int32_t a2 = crow[j0 + 2], a3 = crow[j0 + 3];
                std::int32_t a4 = crow[j0 + 4], a5 = crow[j0 + 5];
                std::int32_t a6 = crow[j0 + 6], a7 = crow[j0 + 7];
                for (std::int64_t kk = k0; kk < kEnd; ++kk) {
                    const std::int32_t xv = xrow[kk];
                    if (xv == 0)
                        continue;
                    const std::int8_t* wrow = wq + kk * n + j0;
                    a0 += xv * static_cast<std::int32_t>(wrow[0]);
                    a1 += xv * static_cast<std::int32_t>(wrow[1]);
                    a2 += xv * static_cast<std::int32_t>(wrow[2]);
                    a3 += xv * static_cast<std::int32_t>(wrow[3]);
                    a4 += xv * static_cast<std::int32_t>(wrow[4]);
                    a5 += xv * static_cast<std::int32_t>(wrow[5]);
                    a6 += xv * static_cast<std::int32_t>(wrow[6]);
                    a7 += xv * static_cast<std::int32_t>(wrow[7]);
                }
                crow[j0 + 0] = a0;
                crow[j0 + 1] = a1;
                crow[j0 + 2] = a2;
                crow[j0 + 3] = a3;
                crow[j0 + 4] = a4;
                crow[j0 + 5] = a5;
                crow[j0 + 6] = a6;
                crow[j0 + 7] = a7;
            }
            for (; j0 < n; ++j0) { // ragged column tail
                std::int32_t a = crow[j0];
                for (std::int64_t kk = k0; kk < kEnd; ++kk) {
                    const std::int32_t xv = xrow[kk];
                    if (xv != 0)
                        a += xv * static_cast<std::int32_t>(wq[kk * n + j0]);
                }
                crow[j0] = a;
            }
        }
    }
#endif
}

Tensor
faultyLinear(const Tensor& x, const Tensor& w, const Tensor* bias,
             QuantGemmState& st, ComputeContext& ctx, const std::string& tag,
             const Tensor* outScale)
{
    if (x.rank() != 2 || w.rank() != 2 || x.dim(1) != w.dim(0))
        throw std::invalid_argument("faultyLinear: shape mismatch for " + tag);
    const std::int64_t m = x.dim(0), k = x.dim(1), n = w.dim(1);

    if (ctx.calibrating) {
        // Calibration is a rare clean pass; materializing the scaled
        // weight here keeps the recorded absmax identical to deployment.
        Tensor y = outScale ? ops::matmul(x, scaledWeight(w, *outScale))
                            : ops::matmul(x, w);
        st.inObs.observe(x);
        st.outObs.observe(y);
        if (bias) {
            for (std::int64_t i = 0; i < m; ++i)
                for (std::int64_t j = 0; j < n; ++j)
                    y.at(i, j) +=
                        outScale ? (*bias)[j] * (*outScale)[j] : (*bias)[j];
        }
        return y;
    }

    if (!st.frozen || st.wQ.bits != ctx.bits)
        st.freeze(w, bias, outScale, ctx.bits);

    GemmWorkspace& ws = ctx.ws;
    const std::size_t cnt = static_cast<std::size_t>(m * n);

    // 1. Quantize activations into the reusable workspace buffer.
    quantizeInto(x, st.inQ, ws.xq);

    const double gemmMacs = static_cast<double>(m * n * k);
    const bool inject =
        ctx.mode() != InjectionMode::None && ctx.injectionEnabledFor(tag);

    // 2. Integer GEMM into 24-bit accumulators (int32-backed). The clean
    //    product is only kept separately when injection or a protection
    //    scheme may re-execute with independent error draws; otherwise it
    //    is computed directly in the working buffer and never copied.
    const bool needClean = inject || ctx.protection != Protection::None;
    std::vector<std::int32_t>& gemmDst = needClean ? ws.cleanAcc : ws.acc;
    gemmDst.assign(cnt, 0);
    intGemm(ws.xq.data(), m, k, st.wq.data(), n, gemmDst.data());
    ctx.meter.addGemm(ctx.domain, gemmMacs, ctx.voltage());

    // One (re-)execution: copy the clean accumulators into dst and draw a
    // fresh set of error positions. Buffers are workspace-owned, so the
    // copy reuses capacity instead of allocating.
    auto runInto = [&](std::vector<std::int32_t>& dst,
                       std::vector<std::size_t>* positions) {
        dst = ws.cleanAcc;
        if (inject) {
            const auto stats = BitFlipInjector::inject(
                dst.data(), dst.size(), ctx.activeBitRates(), ctx.rng,
                positions);
            ctx.meter.addFlips(ctx.domain, stats.flips);
        }
    };

    // 3. Inject voltage-underscaling bit flips, under the configured
    //    protection scheme (Sec. 6.10 baselines; CREATE uses None + AD).
    std::vector<std::int32_t>& acc = ws.acc;
    switch (ctx.protection) {
      case Protection::None:
        // Without injection, acc already holds the clean product.
        if (inject)
            runInto(acc, nullptr);
        break;
      case Protection::Dmr: {
        // Duplicate execution and compare; on mismatch a third execution
        // arbitrates per element (2-of-3 vote). Two copies agreeing on a
        // corrupted value requires the same flip twice -- negligible.
        runInto(acc, nullptr);
        runInto(ws.acc2, nullptr);
        ctx.meter.addGemm(ctx.domain, gemmMacs, ctx.voltage()); // the copy
        if (acc != ws.acc2) {
            runInto(ws.acc3, nullptr);
            ctx.meter.addGemm(ctx.domain, gemmMacs, ctx.voltage());
            for (std::size_t i = 0; i < cnt; ++i) {
                if (acc[i] != ws.acc2[i])
                    acc[i] = (ws.acc2[i] == ws.acc3[i]) ? ws.acc2[i]
                                                        : ws.acc3[i];
            }
        }
        break;
      }
      case Protection::ThunderVolt: {
        // Razor-style per-PE violation detection with result bypass: any
        // output whose accumulation saw a timing error is dropped to zero
        // (the "excessive neuron pruning" the paper describes). Bypass
        // circuitry adds a small energy overhead.
        ws.positions.clear();
        runInto(acc, &ws.positions);
        for (auto idx : ws.positions)
            acc[idx] = 0;
        ctx.meter.addGemm(ctx.domain, gemmMacs * 0.05, ctx.voltage());
        break;
      }
      case Protection::Abft: {
        // Checksum detection (assumed perfect) + whole-GEMM recompute until
        // a clean pass, bounded at 4 retries. Checksum maintenance costs
        // roughly (M+N) x K extra MACs per attempt.
        const double checksumMacs = static_cast<double>((m + n) * k);
        for (int attempt = 0; attempt < 5; ++attempt) {
            ws.positions.clear();
            runInto(acc, &ws.positions);
            ctx.meter.addGemm(ctx.domain, checksumMacs, ctx.voltage());
            if (ws.positions.empty())
                break;
            // Recompute costs another full GEMM.
            ctx.meter.addGemm(ctx.domain, gemmMacs, ctx.voltage());
        }
        break;
      }
    }

    // 4. Anomaly detection & clearance at the systolic output stage.
    const float deqScale = st.inQ.scale * st.wQ.scale;
    if (ctx.anomalyDetection && st.outBound > 0.0f) {
        const double boundAcc = static_cast<double>(st.outBound) / deqScale;
        const auto lim = static_cast<std::int64_t>(
            std::min(boundAcc, 8388607.0)); // 2^23 - 1 accumulator ceiling
        std::uint64_t cleared = 0;
        for (auto& a : acc) {
            if (a > lim || a < -lim) {
                a = 0;
                ++cleared;
            }
        }
        if (cleared)
            ctx.meter.addAnomalies(ctx.domain, cleared);
    }

    // 5. Dequantize + FP32 bias (channel scale already folded into both),
    //    fused into a single output pass.
    Tensor y({m, n});
    float* py = y.data();
    const std::int32_t* pa = acc.data();
    if (st.hasBias) {
        const float* pb = st.biasEff.data();
        for (std::int64_t i = 0; i < m; ++i) {
            float* yrow = py + i * n;
            const std::int32_t* arow = pa + i * n;
            for (std::int64_t j = 0; j < n; ++j) {
                const float v = static_cast<float>(arow[j]) * deqScale;
                yrow[j] = v + pb[j];
            }
        }
    } else {
        for (std::int64_t i = 0; i < m * n; ++i)
            py[i] = static_cast<float>(pa[i]) * deqScale;
    }
    return y;
}

} // namespace create
