#include "hw/faulty_gemm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/metrics.hpp"
#include "fault/injector.hpp"
#include "hw/kernel_dispatch.hpp"
#include "tensor/ops.hpp"

namespace create {

namespace {

/** w with a per-output-channel scale folded in (freeze/calibration only). */
Tensor
scaledWeight(const Tensor& w, const Tensor& outScale)
{
    Tensor weff = w;
    for (std::int64_t i = 0; i < weff.dim(0); ++i)
        for (std::int64_t j = 0; j < weff.dim(1); ++j)
            weff.at(i, j) *= outScale[j];
    return weff;
}

} // namespace

void
QuantGemmState::freeze(const Tensor& w, const Tensor* bias,
                       const Tensor* outScale, QuantBits bits)
{
    // Activation scale: calibrated absmax when available; a per-call
    // fallback would break the fixed-scale-hardware assumption, so we use
    // a generous default when a layer was never calibrated.
    const float inMax = inObs.seeded() ? inObs.absMax() : 8.0f;
    inQ = QuantParams::fromAbsMax(inMax, bits);
    // The deployed weight carries the structural channel scale (planted
    // LLM outliers); folding it here means steady-state calls never
    // rebuild the scaled FP32 weight.
    if (outScale) {
        const Tensor weff = scaledWeight(w, *outScale);
        wQ = QuantParams::fromAbsMax(weff.absMax(), bits);
        wq = quantize(weff, wQ);
    } else {
        wQ = QuantParams::fromAbsMax(w.absMax(), bits);
        wq = quantize(w, wQ);
    }
    hasBias = bias != nullptr;
    biasEff.clear();
    if (bias) {
        biasEff.resize(static_cast<std::size_t>(bias->numel()));
        for (std::int64_t j = 0; j < bias->numel(); ++j)
            biasEff[static_cast<std::size_t>(j)] =
                outScale ? (*bias)[j] * (*outScale)[j] : (*bias)[j];
    }
    // AD bound: calibrated clean-output absmax with a small margin for
    // quantization noise. Unknown (never calibrated) => 0 => AD disabled
    // for this layer.
    outBound = outObs.seeded() ? outObs.absMax() * 1.05f : 0.0f;
    frozen = true;
}

void
QuantGemmState::invalidate()
{
    frozen = false;
    wq.clear();
    biasEff.clear();
    hasBias = false;
    inObs.reset();
    outObs.reset();
    outBound = 0.0f;
}

void
intGemm(const std::int8_t* xq, std::int64_t m, std::int64_t k,
        const std::int8_t* wq, std::int64_t n, std::int32_t* acc)
{
    // Integer accumulation is exact, so any summation order yields the
    // same accumulators; that freedom is what lets the per-ISA kernels
    // behind the dispatch table pair K iterations and block rows while
    // staying bit-identical to the scalar kernel (which the
    // golden-reference test suite asserts). Kernel variants live in
    // src/hw/kernels_*.cpp; selection is CPUID-driven with a
    // CREATE_FORCE_ISA override (see hw/kernel_dispatch.hpp).
    simd::active().intGemm(xq, m, k, wq, n, acc);
}

Tensor
faultyLinear(const Tensor& x, const Tensor& w, const Tensor* bias,
             QuantGemmState& st, ComputeContext& ctx, const std::string& tag,
             const Tensor* outScale)
{
    if (x.rank() != 2 || w.rank() != 2 || x.dim(1) != w.dim(0))
        throw std::invalid_argument("faultyLinear: shape mismatch for " + tag);
    const std::int64_t m = x.dim(0), k = x.dim(1), n = w.dim(1);

    if (ctx.calibrating) {
        // Calibration is a rare clean pass; materializing the scaled
        // weight here keeps the recorded absmax identical to deployment.
        Tensor y = outScale ? ops::matmul(x, scaledWeight(w, *outScale))
                            : ops::matmul(x, w);
        st.inObs.observe(x);
        st.outObs.observe(y);
        if (bias) {
            for (std::int64_t i = 0; i < m; ++i)
                for (std::int64_t j = 0; j < n; ++j)
                    y.at(i, j) +=
                        outScale ? (*bias)[j] * (*outScale)[j] : (*bias)[j];
        }
        return y;
    }

    if (!st.frozen || st.wQ.bits != ctx.bits)
        st.freeze(w, bias, outScale, ctx.bits);

    GemmWorkspace& ws = ctx.ws;
    const std::size_t cnt = static_cast<std::size_t>(m * n);

    // 1. Quantize activations into the reusable workspace buffer.
    quantizeInto(x, st.inQ, ws.xq);

    const double gemmMacs = static_cast<double>(m * n * k);
    const bool inject =
        ctx.mode() != InjectionMode::None && ctx.injectionEnabledFor(tag);

    // Observability only: every counter below reads state the pipeline
    // already computed (or runs an extra O(M*N) compare, dwarfed by the
    // O(M*N*K) GEMM) and never feeds back into a result. `fc` is recorded
    // into the thread-local registry once, at the end of the call.
    const bool metricsOn = MetricsRegistry::enabled();
    LayerFaultCounters fc;
    fc.gemms = 1;

    // 2. Integer GEMM into 24-bit accumulators (int32-backed). The clean
    //    product is only kept separately when injection or a protection
    //    scheme may re-execute with independent error draws; otherwise it
    //    is computed directly in the working buffer and never copied.
    const bool needClean = inject || ctx.protection != Protection::None;
    std::vector<std::int32_t>& gemmDst = needClean ? ws.cleanAcc : ws.acc;
    gemmDst.assign(cnt, 0);
    // A context-carried sink (the cross-episode batcher) takes the GEMM
    // when present; both paths honor the same accumulate contract.
    if (ctx.gemmSink)
        ctx.gemmSink->gemm(ws.xq.data(), m, k, st.wq.data(), n,
                           gemmDst.data());
    else
        simd::active().intGemm(ws.xq.data(), m, k, st.wq.data(), n,
                               gemmDst.data());
    ctx.meter.addGemm(ctx.domain, gemmMacs, ctx.voltage());

    // One (re-)execution: copy the clean accumulators into dst and draw a
    // fresh set of error positions. Buffers are workspace-owned, so the
    // copy reuses capacity instead of allocating.
    auto runInto = [&](std::vector<std::int32_t>& dst,
                       std::vector<std::size_t>* positions) {
        dst = ws.cleanAcc;
        if (inject) {
            const auto stats = BitFlipInjector::inject(
                dst.data(), dst.size(), ctx.activeBitRates(), ctx.rng,
                positions);
            ctx.meter.addFlips(ctx.domain, stats.flips);
            fc.injected += stats.flips;
        }
    };

    // Corrupted elements in an accumulator buffer vs the kept clean
    // product (valid whenever needClean). Attribution-only extra pass.
    auto corruptCount = [&](const std::vector<std::int32_t>& a) {
        std::size_t c = 0;
        for (std::size_t i = 0; i < cnt; ++i)
            c += a[i] != ws.cleanAcc[i];
        return static_cast<std::uint64_t>(c);
    };
    // Corrupted outputs right after the first faulty execution, before
    // any protection acted -- the baseline "corrected" is measured from.
    std::uint64_t preMismatch = 0;

    // 3. Inject voltage-underscaling bit flips, under the configured
    //    protection scheme (Sec. 6.10 baselines; CREATE uses None + AD).
    std::vector<std::int32_t>& acc = ws.acc;
    switch (ctx.protection) {
      case Protection::None:
        // Without injection, acc already holds the clean product.
        if (inject) {
            runInto(acc, nullptr);
            if (metricsOn)
                preMismatch = corruptCount(acc);
        }
        break;
      case Protection::Dmr: {
        // Duplicate execution and compare; on mismatch a third execution
        // arbitrates per element (2-of-3 vote). Two copies agreeing on a
        // corrupted value requires the same flip twice -- negligible.
        runInto(acc, nullptr);
        if (metricsOn && inject)
            preMismatch = corruptCount(acc);
        runInto(ws.acc2, nullptr);
        ctx.meter.addGemm(ctx.domain, gemmMacs, ctx.voltage()); // the copy
        fc.reExecutions += 1; // the duplicate copy
        if (acc != ws.acc2) {
            runInto(ws.acc3, nullptr);
            ctx.meter.addGemm(ctx.domain, gemmMacs, ctx.voltage());
            fc.reExecutions += 1; // the arbitration run
            for (std::size_t i = 0; i < cnt; ++i) {
                if (acc[i] != ws.acc2[i]) {
                    fc.detected += 1;
                    acc[i] = (ws.acc2[i] == ws.acc3[i]) ? ws.acc2[i]
                                                        : ws.acc3[i];
                }
            }
        }
        break;
      }
      case Protection::ThunderVolt: {
        // Razor-style per-PE violation detection with result bypass: any
        // output whose accumulation saw a timing error is dropped to zero
        // (the "excessive neuron pruning" the paper describes). Bypass
        // circuitry adds a small energy overhead.
        ws.positions.clear();
        runInto(acc, &ws.positions);
        if (metricsOn && inject)
            preMismatch = corruptCount(acc);
        fc.detected += ws.positions.size();
        for (auto idx : ws.positions)
            acc[idx] = 0;
        ctx.meter.addGemm(ctx.domain, gemmMacs * 0.05, ctx.voltage());
        break;
      }
      case Protection::Abft: {
        // Checksum detection (assumed perfect) + whole-GEMM recompute until
        // a clean pass, bounded at 4 retries. Checksum maintenance costs
        // roughly (M+N) x K extra MACs per attempt.
        const double checksumMacs = static_cast<double>((m + n) * k);
        for (int attempt = 0; attempt < 5; ++attempt) {
            ws.positions.clear();
            runInto(acc, &ws.positions);
            if (attempt == 0) {
                if (metricsOn && inject)
                    preMismatch = corruptCount(acc);
            } else {
                fc.reExecutions += 1; // this runInto was a recompute
            }
            ctx.meter.addGemm(ctx.domain, checksumMacs, ctx.voltage());
            if (ws.positions.empty())
                break;
            fc.detected += ws.positions.size();
            // Recompute costs another full GEMM.
            ctx.meter.addGemm(ctx.domain, gemmMacs, ctx.voltage());
        }
        break;
      }
    }

    // 4. Anomaly detection & clearance at the systolic output stage.
    const float deqScale = st.inQ.scale * st.wQ.scale;
    if (ctx.anomalyDetection && st.outBound > 0.0f) {
        const double boundAcc = static_cast<double>(st.outBound) / deqScale;
        const auto lim = static_cast<std::int64_t>(
            std::min(boundAcc, 8388607.0)); // 2^23 - 1 accumulator ceiling
        std::uint64_t cleared = 0;
        for (auto& a : acc) {
            if (a > lim || a < -lim) {
                a = 0;
                ++cleared;
            }
        }
        if (cleared)
            ctx.meter.addAnomalies(ctx.domain, cleared);
        // AD flags are detections whether or not anything was injected
        // (a clamp on a clean run is a false positive, still "detected").
        fc.detected += cleared;
    }

    // Attribution epilogue: what actually left the layer. `escaped` is
    // measured at accumulator precision (dequantization is an injective
    // per-element scale, so accumulator-level equality is output-level
    // equality); `corrected` is the net repair vs the first faulty
    // execution, floored at zero in case a protection scheme corrupted
    // more than it fixed (e.g. ThunderVolt zeroing nonzero outputs).
    if (metricsOn && inject) {
        fc.escaped = corruptCount(acc);
        fc.corrected =
            preMismatch > fc.escaped ? preMismatch - fc.escaped : 0;
    }
    if (metricsOn) {
        MetricsRegistry& reg = MetricsRegistry::tls();
        reg.recordGemm(tag);
        if (fc.any())
            reg.recordFault(tag, fc);
    }

    // 5. Dequantize + FP32 bias (channel scale already folded into both),
    //    fused into a single output pass.
    Tensor y({m, n});
    float* py = y.data();
    const std::int32_t* pa = acc.data();
    if (st.hasBias) {
        const float* pb = st.biasEff.data();
        for (std::int64_t i = 0; i < m; ++i) {
            float* yrow = py + i * n;
            const std::int32_t* arow = pa + i * n;
            for (std::int64_t j = 0; j < n; ++j) {
                const float v = static_cast<float>(arow[j]) * deqScale;
                yrow[j] = v + pb[j];
            }
        }
    } else {
        for (std::int64_t i = 0; i < m * n; ++i)
            py[i] = static_cast<float>(pa[i]) * deqScale;
    }
    return y;
}

} // namespace create
