#include "hw/faulty_gemm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fault/injector.hpp"
#include "tensor/ops.hpp"

namespace create {

void
QuantGemmState::freeze(const Tensor& w, QuantBits bits)
{
    // Activation scale: calibrated absmax when available; a per-call
    // fallback would break the fixed-scale-hardware assumption, so we use
    // a generous default when a layer was never calibrated.
    const float inMax = inObs.seeded() ? inObs.absMax() : 8.0f;
    inQ = QuantParams::fromAbsMax(inMax, bits);
    wQ = QuantParams::fromAbsMax(w.absMax(), bits);
    // AD bound: calibrated clean-output absmax with a small margin for
    // quantization noise. Unknown (never calibrated) => 0 => AD disabled
    // for this layer.
    outBound = outObs.seeded() ? outObs.absMax() * 1.05f : 0.0f;
    wq = quantize(w, wQ);
    frozen = true;
}

void
QuantGemmState::invalidate()
{
    frozen = false;
    wq.clear();
    inObs.reset();
    outObs.reset();
    outBound = 0.0f;
}

void
intGemm(const std::int8_t* xq, std::int64_t m, std::int64_t k,
        const std::int8_t* wq, std::int64_t n, std::int32_t* acc)
{
    // Blocked micro-kernel: K is tiled so the 8-column weight slab a tile
    // touches stays L1-resident, and each (row, K-tile, column-block)
    // round keeps its 8 partial sums in int32 registers -- the naive
    // i-k-j kernel instead re-reads and re-writes the whole accumulator
    // row once per k, and that store/reload chain dominates its runtime.
    constexpr std::int64_t kNr = 8;   //!< columns per register block
    constexpr std::int64_t kKc = 256; //!< K tile (256 rows x 8 cols = 2 KiB)
    for (std::int64_t i = 0; i < m; ++i) {
        const std::int8_t* xrow = xq + i * k;
        std::int32_t* crow = acc + i * n;
        for (std::int64_t k0 = 0; k0 < k; k0 += kKc) {
            const std::int64_t kEnd = std::min(k, k0 + kKc);
            std::int64_t j0 = 0;
            for (; j0 + kNr <= n; j0 += kNr) {
                std::int32_t a0 = crow[j0 + 0], a1 = crow[j0 + 1];
                std::int32_t a2 = crow[j0 + 2], a3 = crow[j0 + 3];
                std::int32_t a4 = crow[j0 + 4], a5 = crow[j0 + 5];
                std::int32_t a6 = crow[j0 + 6], a7 = crow[j0 + 7];
                for (std::int64_t kk = k0; kk < kEnd; ++kk) {
                    const std::int32_t xv = xrow[kk];
                    if (xv == 0)
                        continue;
                    const std::int8_t* wrow = wq + kk * n + j0;
                    a0 += xv * static_cast<std::int32_t>(wrow[0]);
                    a1 += xv * static_cast<std::int32_t>(wrow[1]);
                    a2 += xv * static_cast<std::int32_t>(wrow[2]);
                    a3 += xv * static_cast<std::int32_t>(wrow[3]);
                    a4 += xv * static_cast<std::int32_t>(wrow[4]);
                    a5 += xv * static_cast<std::int32_t>(wrow[5]);
                    a6 += xv * static_cast<std::int32_t>(wrow[6]);
                    a7 += xv * static_cast<std::int32_t>(wrow[7]);
                }
                crow[j0 + 0] = a0;
                crow[j0 + 1] = a1;
                crow[j0 + 2] = a2;
                crow[j0 + 3] = a3;
                crow[j0 + 4] = a4;
                crow[j0 + 5] = a5;
                crow[j0 + 6] = a6;
                crow[j0 + 7] = a7;
            }
            for (; j0 < n; ++j0) { // ragged column tail
                std::int32_t a = crow[j0];
                for (std::int64_t kk = k0; kk < kEnd; ++kk) {
                    const std::int32_t xv = xrow[kk];
                    if (xv != 0)
                        a += xv * static_cast<std::int32_t>(wq[kk * n + j0]);
                }
                crow[j0] = a;
            }
        }
    }
}

Tensor
faultyLinear(const Tensor& x, const Tensor& w, const Tensor* bias,
             QuantGemmState& st, ComputeContext& ctx, const std::string& tag)
{
    if (x.rank() != 2 || w.rank() != 2 || x.dim(1) != w.dim(0))
        throw std::invalid_argument("faultyLinear: shape mismatch for " + tag);
    const std::int64_t m = x.dim(0), k = x.dim(1), n = w.dim(1);

    if (ctx.calibrating) {
        Tensor y = ops::matmul(x, w);
        st.inObs.observe(x);
        st.outObs.observe(y);
        if (bias)
            y = ops::addRowBroadcast(y, *bias);
        return y;
    }

    if (!st.frozen || st.wQ.bits != ctx.bits)
        st.freeze(w, ctx.bits);

    // 1. Quantize activations.
    const std::vector<std::int8_t> xq = quantize(x, st.inQ);

    // 2. Integer GEMM into 24-bit accumulators (int32-backed). The clean
    //    accumulators are kept so protection schemes can re-execute with
    //    independent error draws without recomputing the product.
    std::vector<std::int32_t> cleanAcc(static_cast<std::size_t>(m * n), 0);
    intGemm(xq.data(), m, k, st.wq.data(), n, cleanAcc.data());
    const double gemmMacs = static_cast<double>(m * n * k);
    ctx.meter.addGemm(ctx.domain, gemmMacs, ctx.voltage());

    const bool inject =
        ctx.mode() != InjectionMode::None && ctx.injectionEnabledFor(tag);
    auto runOnce = [&](std::vector<std::size_t>* positions) {
        std::vector<std::int32_t> acc = cleanAcc;
        if (inject) {
            const auto stats = BitFlipInjector::inject(
                acc.data(), acc.size(), ctx.activeBitRates(), ctx.rng,
                positions);
            ctx.meter.addFlips(ctx.domain, stats.flips);
        }
        return acc;
    };

    // 3. Inject voltage-underscaling bit flips, under the configured
    //    protection scheme (Sec. 6.10 baselines; CREATE uses None + AD).
    std::vector<std::int32_t> acc;
    switch (ctx.protection) {
      case Protection::None:
        // With injection off the clean accumulators are consumed exactly
        // once -- move them instead of copying the whole MxN block.
        acc = inject ? runOnce(nullptr) : std::move(cleanAcc);
        break;
      case Protection::Dmr: {
        // Duplicate execution and compare; on mismatch a third execution
        // arbitrates per element (2-of-3 vote). Two copies agreeing on a
        // corrupted value requires the same flip twice -- negligible.
        acc = runOnce(nullptr);
        const auto second = runOnce(nullptr);
        ctx.meter.addGemm(ctx.domain, gemmMacs, ctx.voltage()); // the copy
        if (acc != second) {
            const auto third = runOnce(nullptr);
            ctx.meter.addGemm(ctx.domain, gemmMacs, ctx.voltage());
            for (std::size_t i = 0; i < acc.size(); ++i) {
                if (acc[i] != second[i])
                    acc[i] = (second[i] == third[i]) ? second[i] : third[i];
            }
        }
        break;
      }
      case Protection::ThunderVolt: {
        // Razor-style per-PE violation detection with result bypass: any
        // output whose accumulation saw a timing error is dropped to zero
        // (the "excessive neuron pruning" the paper describes). Bypass
        // circuitry adds a small energy overhead.
        std::vector<std::size_t> positions;
        acc = runOnce(&positions);
        for (auto idx : positions)
            acc[idx] = 0;
        ctx.meter.addGemm(ctx.domain, gemmMacs * 0.05, ctx.voltage());
        break;
      }
      case Protection::Abft: {
        // Checksum detection (assumed perfect) + whole-GEMM recompute until
        // a clean pass, bounded at 4 retries. Checksum maintenance costs
        // roughly (M+N) x K extra MACs per attempt.
        const double checksumMacs = static_cast<double>((m + n) * k);
        for (int attempt = 0; attempt < 5; ++attempt) {
            std::vector<std::size_t> positions;
            acc = runOnce(&positions);
            ctx.meter.addGemm(ctx.domain, checksumMacs, ctx.voltage());
            if (positions.empty())
                break;
            // Recompute costs another full GEMM.
            ctx.meter.addGemm(ctx.domain, gemmMacs, ctx.voltage());
        }
        break;
      }
    }

    // 4. Anomaly detection & clearance at the systolic output stage.
    const float deqScale = st.inQ.scale * st.wQ.scale;
    if (ctx.anomalyDetection && st.outBound > 0.0f) {
        const double boundAcc = static_cast<double>(st.outBound) / deqScale;
        const auto lim = static_cast<std::int64_t>(
            std::min(boundAcc, 8388607.0)); // 2^23 - 1 accumulator ceiling
        std::uint64_t cleared = 0;
        for (auto& a : acc) {
            if (a > lim || a < -lim) {
                a = 0;
                ++cleared;
            }
        }
        if (cleared)
            ctx.meter.addAnomalies(ctx.domain, cleared);
    }

    // 5. Dequantize + FP32 bias.
    Tensor y({m, n});
    for (std::int64_t i = 0; i < m * n; ++i)
        y[i] = static_cast<float>(acc[static_cast<std::size_t>(i)]) * deqScale;
    if (bias)
        y = ops::addRowBroadcast(y, *bias);
    return y;
}

} // namespace create
