/** @file AVX2 kernels: 16-column pmaddwd int-GEMM with 4-row register
 *  blocking, 8-wide quantization, 8-wide absmax.
 *
 *  This TU is compiled with -mavx2 (attached per-file by CMake); when the
 *  compiler cannot target AVX2 the functions degrade to delegating
 *  wrappers and avx2KernelsCompiled() reports false so the dispatcher
 *  never registers the tier.
 *
 *  GEMM scheme: like the SSE2 golden kernel, K rows are fused in pairs --
 *  weights of rows kk/kk+1 are widened to int16 and interleaved so
 *  pmaddwd against the broadcast activation pair (x[kk], x[kk+1])
 *  produces per-column two-term partial sums in int32 lanes. The AVX2
 *  wrinkle is that vpunpck[lh]wd interleave within each 128-bit lane, so
 *  a 16-column block's madd results arrive in the permuted column order
 *  {0-3, 8-11} / {4-7, 12-15}. Instead of shuffling every iteration, the
 *  two accumulator vectors are kept in that permuted layout for the whole
 *  K loop and swapped back with one vperm2i128 pair on load and store --
 *  integer addition commutes, so this is exact.
 *
 *  Row blocking: quads of rows share each widened weight load (the GEMM
 *  is load-port-bound, and the weight stream is the dominant operand), so
 *  fusing rows -- exactly what the cross-episode batcher does -- raises
 *  MACs per issued uop. A single-row loop covers the remainder.
 */

#include "hw/simd_kernels.hpp"

#if defined(__AVX2__)
#include <immintrin.h>

#include "hw/simd_gemm_common.hpp"
#endif

namespace create::simd::detail {

#if defined(__AVX2__)

namespace {

using detail::gemmRowTailColsSse2;
using detail::xPairI32;

/** Widened, pairwise-interleaved weights for 16 columns of rows kk/kk+1:
 *  lo covers columns {0-3, 8-11} of the block, hi covers {4-7, 12-15}. */
inline void
widenPair16(const std::int8_t* w0p, const std::int8_t* w1p, __m256i& lo,
            __m256i& hi)
{
    const __m256i w0 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(w0p)));
    const __m256i w1 =
        w1p ? _mm256_cvtepi8_epi16(
                  _mm_loadu_si128(reinterpret_cast<const __m128i*>(w1p)))
            : _mm256_setzero_si256();
    lo = _mm256_unpacklo_epi16(w0, w1);
    hi = _mm256_unpackhi_epi16(w0, w1);
}

/** Load a 16-column accumulator block into the permuted {A, B} layout. */
inline void
loadAcc16(const std::int32_t* crow, __m256i& accA, __m256i& accB)
{
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(crow));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(crow + 8));
    accA = _mm256_permute2x128_si256(a, b, 0x20); // cols {0-3, 8-11}
    accB = _mm256_permute2x128_si256(a, b, 0x31); // cols {4-7, 12-15}
}

/** Store the permuted {A, B} accumulators back in natural column order. */
inline void
storeAcc16(std::int32_t* crow, __m256i accA, __m256i accB)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow),
                        _mm256_permute2x128_si256(accA, accB, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + 8),
                        _mm256_permute2x128_si256(accA, accB, 0x31));
}

} // namespace

bool
avx2KernelsCompiled()
{
    return true;
}

void
intGemmAvx2(const std::int8_t* xq, std::int64_t m, std::int64_t k,
            const std::int8_t* wq, std::int64_t n, std::int32_t* acc)
{
    std::int64_t i = 0;
    for (; i + 4 <= m; i += 4) { // 4-row quads share every weight load
        const std::int8_t* x0 = xq + (i + 0) * k;
        const std::int8_t* x1 = xq + (i + 1) * k;
        const std::int8_t* x2 = xq + (i + 2) * k;
        const std::int8_t* x3 = xq + (i + 3) * k;
        std::int32_t* c0 = acc + (i + 0) * n;
        std::int32_t* c1 = acc + (i + 1) * n;
        std::int32_t* c2 = acc + (i + 2) * n;
        std::int32_t* c3 = acc + (i + 3) * n;
        std::int64_t j0 = 0;
        for (; j0 + 16 <= n; j0 += 16) {
            __m256i a0A, a0B, a1A, a1B, a2A, a2B, a3A, a3B;
            loadAcc16(c0 + j0, a0A, a0B);
            loadAcc16(c1 + j0, a1A, a1B);
            loadAcc16(c2 + j0, a2A, a2B);
            loadAcc16(c3 + j0, a3A, a3B);
            for (std::int64_t kk = 0; kk < k; kk += 2) {
                const std::int32_t p0 = xPairI32(x0, kk, k);
                const std::int32_t p1 = xPairI32(x1, kk, k);
                const std::int32_t p2 = xPairI32(x2, kk, k);
                const std::int32_t p3 = xPairI32(x3, kk, k);
                if ((p0 | p1 | p2 | p3) == 0)
                    continue;
                __m256i lo, hi;
                widenPair16(wq + kk * n + j0,
                            kk + 1 < k ? wq + (kk + 1) * n + j0 : nullptr,
                            lo, hi);
                const __m256i xp0 = _mm256_set1_epi32(p0);
                const __m256i xp1 = _mm256_set1_epi32(p1);
                const __m256i xp2 = _mm256_set1_epi32(p2);
                const __m256i xp3 = _mm256_set1_epi32(p3);
                a0A = _mm256_add_epi32(a0A, _mm256_madd_epi16(lo, xp0));
                a0B = _mm256_add_epi32(a0B, _mm256_madd_epi16(hi, xp0));
                a1A = _mm256_add_epi32(a1A, _mm256_madd_epi16(lo, xp1));
                a1B = _mm256_add_epi32(a1B, _mm256_madd_epi16(hi, xp1));
                a2A = _mm256_add_epi32(a2A, _mm256_madd_epi16(lo, xp2));
                a2B = _mm256_add_epi32(a2B, _mm256_madd_epi16(hi, xp2));
                a3A = _mm256_add_epi32(a3A, _mm256_madd_epi16(lo, xp3));
                a3B = _mm256_add_epi32(a3B, _mm256_madd_epi16(hi, xp3));
            }
            storeAcc16(c0 + j0, a0A, a0B);
            storeAcc16(c1 + j0, a1A, a1B);
            storeAcc16(c2 + j0, a2A, a2B);
            storeAcc16(c3 + j0, a3A, a3B);
        }
        if (j0 < n) {
            gemmRowTailColsSse2(x0, k, wq, n, c0, j0);
            gemmRowTailColsSse2(x1, k, wq, n, c1, j0);
            gemmRowTailColsSse2(x2, k, wq, n, c2, j0);
            gemmRowTailColsSse2(x3, k, wq, n, c3, j0);
        }
    }
    for (; i < m; ++i) { // single-row remainder
        const std::int8_t* xrow = xq + i * k;
        std::int32_t* crow = acc + i * n;
        std::int64_t j0 = 0;
        for (; j0 + 16 <= n; j0 += 16) {
            __m256i accA, accB;
            loadAcc16(crow + j0, accA, accB);
            for (std::int64_t kk = 0; kk < k; kk += 2) {
                const std::int32_t pair = xPairI32(xrow, kk, k);
                if (pair == 0)
                    continue;
                __m256i lo, hi;
                widenPair16(wq + kk * n + j0,
                            kk + 1 < k ? wq + (kk + 1) * n + j0 : nullptr,
                            lo, hi);
                const __m256i xp = _mm256_set1_epi32(pair);
                accA = _mm256_add_epi32(accA, _mm256_madd_epi16(lo, xp));
                accB = _mm256_add_epi32(accB, _mm256_madd_epi16(hi, xp));
            }
            storeAcc16(crow + j0, accA, accB);
        }
        if (j0 < n)
            gemmRowTailColsSse2(xrow, k, wq, n, crow, j0);
    }
}

void
quantizeAvx2(const float* src, std::int64_t n, float invScale, int lim,
             std::int8_t* out)
{
    // Same clamp-then-cvtps2dq scheme as the SSE2 golden kernel (see the
    // bit-identity argument there), eight lanes at a time.
    const __m256 vinv = _mm256_set1_ps(invScale);
    const __m256 vlim = _mm256_set1_ps(static_cast<float>(lim));
    const __m256 vnlim = _mm256_set1_ps(static_cast<float>(-lim));
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256 v = _mm256_mul_ps(_mm256_loadu_ps(src + i), vinv);
        v = _mm256_min_ps(_mm256_max_ps(v, vnlim), vlim);
        const __m256i q = _mm256_cvtps_epi32(v);
        const __m128i p16 = _mm_packs_epi32(
            _mm256_castsi256_si128(q), _mm256_extracti128_si256(q, 1));
        const __m128i p8 = _mm_packs_epi16(p16, p16);
        _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i), p8);
    }
    if (i < n)
        quantizeSse2(src + i, n - i, invScale, lim, out + i);
}

float
absMaxAvx2(const float* src, std::int64_t n)
{
    const __m256 vsign = _mm256_set1_ps(-0.0f);
    __m256 vmax = _mm256_setzero_ps();
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8)
        vmax = _mm256_max_ps(
            vmax, _mm256_andnot_ps(vsign, _mm256_loadu_ps(src + i)));
    float lanes[8];
    _mm256_storeu_ps(lanes, vmax);
    float m = lanes[0];
    for (int l = 1; l < 8; ++l)
        m = lanes[l] > m ? lanes[l] : m;
    const float tail = absMaxScalar(src + i, n - i);
    return tail > m ? tail : m;
}

#else // compiler cannot target AVX2: delegate (tier stays unregistered)

bool
avx2KernelsCompiled()
{
    return false;
}

void
intGemmAvx2(const std::int8_t* xq, std::int64_t m, std::int64_t k,
            const std::int8_t* wq, std::int64_t n, std::int32_t* acc)
{
    intGemmSse2(xq, m, k, wq, n, acc);
}

void
quantizeAvx2(const float* src, std::int64_t n, float invScale, int lim,
             std::int8_t* out)
{
    quantizeSse2(src, n, invScale, lim, out);
}

float
absMaxAvx2(const float* src, std::int64_t n)
{
    return absMaxSse2(src, n);
}

#endif

} // namespace create::simd::detail
