/** @file AVX-512 VNNI kernels: 32-column vpdpwssd int-GEMM with 4-row
 *  register blocking, 16-wide quantization, 16-wide absmax.
 *
 *  This TU is compiled with -mavx512{f,bw,vl,vnni} (attached per-file by
 *  CMake); without compiler support the functions degrade to delegating
 *  wrappers and avx512KernelsCompiled() reports false.
 *
 *  GEMM scheme: the same paired-K formulation as the SSE2/AVX2 kernels,
 *  but expressed with the VNNI word dot-product. Weights of rows kk/kk+1
 *  are interleaved bytewise (vpunpck[lh]bw on 128-bit halves keeps the
 *  natural column order), widened to int16 with vpmovsxbw, and fed to
 *  vpdpwssd against the broadcast activation pair -- each int32 lane
 *  accumulates x[kk]*w[kk][j] + x[kk+1]*w[kk+1][j] exactly, with no
 *  permuted-accumulator dance. We deliberately use the signed word form
 *  (vpdpwssd) rather than the byte form (vpdpbusd): vpdpbusd requires an
 *  unsigned operand, which would need a per-weight-matrix column-sum
 *  compensation term to undo the +128 bias -- correct but no longer the
 *  same arithmetic as the golden kernel. vpdpwssd keeps every variant
 *  bit-identical by construction at half the byte-form's peak, which this
 *  pipeline cannot reach anyway (it is load-bound on the weight stream,
 *  not multiply-bound).
 *
 *  Row blocking: as in the AVX2 kernel, quads of rows share each widened
 *  weight load, which is what makes fused (batched) rows cheaper than
 *  repeated single-row calls.
 */

#include "hw/simd_kernels.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VNNI__)
#define CREATE_HAVE_AVX512_KERNELS 1
#include <immintrin.h>

#include "hw/simd_gemm_common.hpp"
#endif

namespace create::simd::detail {

#if defined(CREATE_HAVE_AVX512_KERNELS)

namespace {

/** Widened int16 pairs (w[kk][j], w[kk+1][j]) for 16 columns, natural
 *  column order: lane j of the result holds the pair for column j0+j. */
inline __m512i
widenPair16(const std::int8_t* w0p, const std::int8_t* w1p)
{
    const __m128i w0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(w0p));
    const __m128i w1 =
        w1p ? _mm_loadu_si128(reinterpret_cast<const __m128i*>(w1p))
            : _mm_setzero_si128();
    const __m256i inter = _mm256_set_m128i(_mm_unpackhi_epi8(w0, w1),
                                           _mm_unpacklo_epi8(w0, w1));
    return _mm512_cvtepi8_epi16(inter);
}

} // namespace

bool
avx512KernelsCompiled()
{
    return true;
}

void
intGemmAvx512(const std::int8_t* xq, std::int64_t m, std::int64_t k,
              const std::int8_t* wq, std::int64_t n, std::int32_t* acc)
{
    std::int64_t i = 0;
    for (; i + 4 <= m; i += 4) { // 4-row quads share every weight load
        const std::int8_t* x0 = xq + (i + 0) * k;
        const std::int8_t* x1 = xq + (i + 1) * k;
        const std::int8_t* x2 = xq + (i + 2) * k;
        const std::int8_t* x3 = xq + (i + 3) * k;
        std::int32_t* c0 = acc + (i + 0) * n;
        std::int32_t* c1 = acc + (i + 1) * n;
        std::int32_t* c2 = acc + (i + 2) * n;
        std::int32_t* c3 = acc + (i + 3) * n;
        std::int64_t j0 = 0;
        for (; j0 + 32 <= n; j0 += 32) { // 32 cols x 4 rows: 8 accumulators
            __m512i a0L = _mm512_loadu_si512(c0 + j0);
            __m512i a0H = _mm512_loadu_si512(c0 + j0 + 16);
            __m512i a1L = _mm512_loadu_si512(c1 + j0);
            __m512i a1H = _mm512_loadu_si512(c1 + j0 + 16);
            __m512i a2L = _mm512_loadu_si512(c2 + j0);
            __m512i a2H = _mm512_loadu_si512(c2 + j0 + 16);
            __m512i a3L = _mm512_loadu_si512(c3 + j0);
            __m512i a3H = _mm512_loadu_si512(c3 + j0 + 16);
            for (std::int64_t kk = 0; kk < k; kk += 2) {
                const std::int32_t p0 = xPairI32(x0, kk, k);
                const std::int32_t p1 = xPairI32(x1, kk, k);
                const std::int32_t p2 = xPairI32(x2, kk, k);
                const std::int32_t p3 = xPairI32(x3, kk, k);
                if ((p0 | p1 | p2 | p3) == 0)
                    continue;
                const std::int8_t* w0p = wq + kk * n + j0;
                const std::int8_t* w1p =
                    kk + 1 < k ? wq + (kk + 1) * n + j0 : nullptr;
                const __m512i wL = widenPair16(w0p, w1p);
                const __m512i wH =
                    widenPair16(w0p + 16, w1p ? w1p + 16 : nullptr);
                const __m512i xp0 = _mm512_set1_epi32(p0);
                const __m512i xp1 = _mm512_set1_epi32(p1);
                const __m512i xp2 = _mm512_set1_epi32(p2);
                const __m512i xp3 = _mm512_set1_epi32(p3);
                a0L = _mm512_dpwssd_epi32(a0L, wL, xp0);
                a0H = _mm512_dpwssd_epi32(a0H, wH, xp0);
                a1L = _mm512_dpwssd_epi32(a1L, wL, xp1);
                a1H = _mm512_dpwssd_epi32(a1H, wH, xp1);
                a2L = _mm512_dpwssd_epi32(a2L, wL, xp2);
                a2H = _mm512_dpwssd_epi32(a2H, wH, xp2);
                a3L = _mm512_dpwssd_epi32(a3L, wL, xp3);
                a3H = _mm512_dpwssd_epi32(a3H, wH, xp3);
            }
            _mm512_storeu_si512(c0 + j0, a0L);
            _mm512_storeu_si512(c0 + j0 + 16, a0H);
            _mm512_storeu_si512(c1 + j0, a1L);
            _mm512_storeu_si512(c1 + j0 + 16, a1H);
            _mm512_storeu_si512(c2 + j0, a2L);
            _mm512_storeu_si512(c2 + j0 + 16, a2H);
            _mm512_storeu_si512(c3 + j0, a3L);
            _mm512_storeu_si512(c3 + j0 + 16, a3H);
        }
        for (; j0 + 16 <= n; j0 += 16) { // 16-col block
            __m512i a0 = _mm512_loadu_si512(c0 + j0);
            __m512i a1 = _mm512_loadu_si512(c1 + j0);
            __m512i a2 = _mm512_loadu_si512(c2 + j0);
            __m512i a3 = _mm512_loadu_si512(c3 + j0);
            for (std::int64_t kk = 0; kk < k; kk += 2) {
                const std::int32_t p0 = xPairI32(x0, kk, k);
                const std::int32_t p1 = xPairI32(x1, kk, k);
                const std::int32_t p2 = xPairI32(x2, kk, k);
                const std::int32_t p3 = xPairI32(x3, kk, k);
                if ((p0 | p1 | p2 | p3) == 0)
                    continue;
                const __m512i w = widenPair16(
                    wq + kk * n + j0,
                    kk + 1 < k ? wq + (kk + 1) * n + j0 : nullptr);
                a0 = _mm512_dpwssd_epi32(a0, w, _mm512_set1_epi32(p0));
                a1 = _mm512_dpwssd_epi32(a1, w, _mm512_set1_epi32(p1));
                a2 = _mm512_dpwssd_epi32(a2, w, _mm512_set1_epi32(p2));
                a3 = _mm512_dpwssd_epi32(a3, w, _mm512_set1_epi32(p3));
            }
            _mm512_storeu_si512(c0 + j0, a0);
            _mm512_storeu_si512(c1 + j0, a1);
            _mm512_storeu_si512(c2 + j0, a2);
            _mm512_storeu_si512(c3 + j0, a3);
        }
        if (j0 < n) {
            gemmRowTailColsSse2(x0, k, wq, n, c0, j0);
            gemmRowTailColsSse2(x1, k, wq, n, c1, j0);
            gemmRowTailColsSse2(x2, k, wq, n, c2, j0);
            gemmRowTailColsSse2(x3, k, wq, n, c3, j0);
        }
    }
    for (; i < m; ++i) { // single-row remainder
        const std::int8_t* xrow = xq + i * k;
        std::int32_t* crow = acc + i * n;
        std::int64_t j0 = 0;
        for (; j0 + 32 <= n; j0 += 32) {
            __m512i aL = _mm512_loadu_si512(crow + j0);
            __m512i aH = _mm512_loadu_si512(crow + j0 + 16);
            for (std::int64_t kk = 0; kk < k; kk += 2) {
                const std::int32_t pair = xPairI32(xrow, kk, k);
                if (pair == 0)
                    continue;
                const std::int8_t* w0p = wq + kk * n + j0;
                const std::int8_t* w1p =
                    kk + 1 < k ? wq + (kk + 1) * n + j0 : nullptr;
                const __m512i xp = _mm512_set1_epi32(pair);
                aL = _mm512_dpwssd_epi32(aL, widenPair16(w0p, w1p), xp);
                aH = _mm512_dpwssd_epi32(
                    aH, widenPair16(w0p + 16, w1p ? w1p + 16 : nullptr), xp);
            }
            _mm512_storeu_si512(crow + j0, aL);
            _mm512_storeu_si512(crow + j0 + 16, aH);
        }
        for (; j0 + 16 <= n; j0 += 16) {
            __m512i a = _mm512_loadu_si512(crow + j0);
            for (std::int64_t kk = 0; kk < k; kk += 2) {
                const std::int32_t pair = xPairI32(xrow, kk, k);
                if (pair == 0)
                    continue;
                a = _mm512_dpwssd_epi32(
                    a,
                    widenPair16(wq + kk * n + j0,
                                kk + 1 < k ? wq + (kk + 1) * n + j0
                                           : nullptr),
                    _mm512_set1_epi32(pair));
            }
            _mm512_storeu_si512(crow + j0, a);
        }
        if (j0 < n)
            gemmRowTailColsSse2(xrow, k, wq, n, crow, j0);
    }
}

void
quantizeAvx512(const float* src, std::int64_t n, float invScale, int lim,
               std::int8_t* out)
{
    // Same clamp-then-cvtps2dq scheme as the SSE2 golden kernel (see the
    // bit-identity argument there), sixteen lanes at a time; the
    // saturating narrow (vpmovsdb) is a no-op after the +/-lim clamp.
    const __m512 vinv = _mm512_set1_ps(invScale);
    const __m512 vlim = _mm512_set1_ps(static_cast<float>(lim));
    const __m512 vnlim = _mm512_set1_ps(static_cast<float>(-lim));
    std::int64_t i = 0;
    for (; i + 16 <= n; i += 16) {
        __m512 v = _mm512_mul_ps(_mm512_loadu_ps(src + i), vinv);
        v = _mm512_min_ps(_mm512_max_ps(v, vnlim), vlim);
        const __m512i q = _mm512_cvtps_epi32(v);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                         _mm512_cvtsepi32_epi8(q));
    }
    if (i < n)
        quantizeSse2(src + i, n - i, invScale, lim, out + i);
}

float
absMaxAvx512(const float* src, std::int64_t n)
{
    __m512 vmax = _mm512_setzero_ps();
    std::int64_t i = 0;
    for (; i + 16 <= n; i += 16)
        vmax = _mm512_max_ps(vmax, _mm512_abs_ps(_mm512_loadu_ps(src + i)));
    float m = _mm512_reduce_max_ps(vmax);
    const float tail = absMaxScalar(src + i, n - i);
    return tail > m ? tail : m;
}

#else // compiler cannot target AVX-512 VNNI: delegate

bool
avx512KernelsCompiled()
{
    return false;
}

void
intGemmAvx512(const std::int8_t* xq, std::int64_t m, std::int64_t k,
              const std::int8_t* wq, std::int64_t n, std::int32_t* acc)
{
    intGemmAvx2(xq, m, k, wq, n, acc);
}

void
quantizeAvx512(const float* src, std::int64_t n, float invScale, int lim,
               std::int8_t* out)
{
    quantizeAvx2(src, n, invScale, lim, out);
}

float
absMaxAvx512(const float* src, std::int64_t n)
{
    return absMaxAvx2(src, n);
}

#endif

} // namespace create::simd::detail
