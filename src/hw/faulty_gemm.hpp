#pragma once

/**
 * @file
 * The quantized, fault-injectable GEMM pipeline every model layer runs on.
 *
 * Pipeline per call (paper Secs. 3.2 and 5.1):
 *   1. quantize activations to INT8/INT4 with a calibrated per-tensor scale,
 *   2. integer GEMM into 24-bit accumulators (weights pre-quantized),
 *   3. inject random bit flips into the accumulators per the context's
 *      active error model,
 *   4. anomaly detection & clearance: accumulators whose dequantized value
 *      exceeds the calibrated valid output bound are clamped to zero
 *      ("127x the output scaling factor" rule),
 *   5. dequantize and add the FP32 bias (bias lives in the output stage,
 *      after the AD comparators, as in the Fig. 8(b) circuit).
 *
 * Calibration: a clean pass with ctx.calibrating=true records activation
 * and output absmax into the layer's QuantGemmState; freeze() then derives
 * quantization scales and the AD bound. Re-running calibration after weight
 * rotation tightens the bound (the AD x WR synergy of Sec. 6.6).
 */

#include <string>

#include "hw/compute_context.hpp"
#include "tensor/tensor.hpp"

namespace create {

/** Per-layer quantization + anomaly-detection state. */
struct QuantGemmState
{
    AbsMaxObserver inObs;   //!< calibration: activation absmax
    AbsMaxObserver outObs;  //!< calibration: clean output absmax

    QuantParams inQ;        //!< frozen activation scale
    QuantParams wQ;         //!< frozen weight scale
    float outBound = 0.0f;  //!< AD valid |y| bound (0 = unknown -> no clamp)
    std::vector<std::int8_t> wq; //!< cached quantized weights (row-major KxN)
    std::vector<float> biasEff;  //!< cached bias with channel scale folded in
    bool hasBias = false;
    bool frozen = false;

    /**
     * Derive scales from observers (or the weight itself) and cache the
     * deployed weight/bias: wq is quantized from w with the optional
     * per-output-channel scale folded in, biasEff is bias * outScale.
     */
    void freeze(const Tensor& w, const Tensor* bias, const Tensor* outScale,
                QuantBits bits);

    /** freeze() for a plain (unscaled, bias-free) weight. */
    void freeze(const Tensor& w, QuantBits bits)
    {
        freeze(w, nullptr, nullptr, bits);
    }

    /** Drop frozen state (weights changed, e.g. after rotation). */
    void invalidate();
};

/**
 * y(MxN) = x(MxK) @ w(KxN) + bias through the quantized faulty pipeline.
 *
 * In calibration mode computes the exact FP32 product and records stats.
 * `tag` identifies the component for targeted injection and bookkeeping.
 * `outScale` is an optional fixed per-output-channel scale (planted LLM
 * outliers); it is folded into the deployed weight and bias at freeze
 * time, so steady-state calls never materialize the scaled weight.
 *
 * Steady-state (frozen) calls are allocation-free apart from the returned
 * tensor: activations quantize into and accumulators live in the
 * context's GemmWorkspace, the clean product is only copied when a
 * protection scheme needs independent re-executions, and dequantization,
 * bias add, and the channel scale happen in one fused output pass.
 */
Tensor faultyLinear(const Tensor& x, const Tensor& w, const Tensor* bias,
                    QuantGemmState& st, ComputeContext& ctx,
                    const std::string& tag, const Tensor* outScale = nullptr);

/** Integer GEMM helper: acc(MxN) += xq(MxK) @ wq(KxN), int32 accumulators. */
void intGemm(const std::int8_t* xq, std::int64_t m, std::int64_t k,
             const std::int8_t* wq, std::int64_t n, std::int32_t* acc);

} // namespace create
