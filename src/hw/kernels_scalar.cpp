/** @file Portable scalar kernels: the any-architecture floor of the
 *  dispatch hierarchy, and the semantic definition every SIMD variant is
 *  measured against (bit-identical, enforced by the golden suite). */

#include "hw/simd_kernels.hpp"

#include <algorithm>
#include <cmath>

namespace create::simd::detail {

void
intGemmScalar(const std::int8_t* xq, std::int64_t m, std::int64_t k,
              const std::int8_t* wq, std::int64_t n, std::int32_t* acc)
{
    // K-tiled, 8-column register-blocked micro-kernel (each (row, K-tile,
    // column-block) round keeps its 8 partial sums in int32 registers
    // instead of re-reading the accumulator row per k).
    constexpr std::int64_t kNr = 8;   //!< columns per register block
    constexpr std::int64_t kKc = 256; //!< K tile (256 rows x 8 cols = 2 KiB)
    for (std::int64_t i = 0; i < m; ++i) {
        const std::int8_t* xrow = xq + i * k;
        std::int32_t* crow = acc + i * n;
        for (std::int64_t k0 = 0; k0 < k; k0 += kKc) {
            const std::int64_t kEnd = std::min(k, k0 + kKc);
            std::int64_t j0 = 0;
            for (; j0 + kNr <= n; j0 += kNr) {
                std::int32_t a0 = crow[j0 + 0], a1 = crow[j0 + 1];
                std::int32_t a2 = crow[j0 + 2], a3 = crow[j0 + 3];
                std::int32_t a4 = crow[j0 + 4], a5 = crow[j0 + 5];
                std::int32_t a6 = crow[j0 + 6], a7 = crow[j0 + 7];
                for (std::int64_t kk = k0; kk < kEnd; ++kk) {
                    const std::int32_t xv = xrow[kk];
                    if (xv == 0)
                        continue;
                    const std::int8_t* wrow = wq + kk * n + j0;
                    a0 += xv * static_cast<std::int32_t>(wrow[0]);
                    a1 += xv * static_cast<std::int32_t>(wrow[1]);
                    a2 += xv * static_cast<std::int32_t>(wrow[2]);
                    a3 += xv * static_cast<std::int32_t>(wrow[3]);
                    a4 += xv * static_cast<std::int32_t>(wrow[4]);
                    a5 += xv * static_cast<std::int32_t>(wrow[5]);
                    a6 += xv * static_cast<std::int32_t>(wrow[6]);
                    a7 += xv * static_cast<std::int32_t>(wrow[7]);
                }
                crow[j0 + 0] = a0;
                crow[j0 + 1] = a1;
                crow[j0 + 2] = a2;
                crow[j0 + 3] = a3;
                crow[j0 + 4] = a4;
                crow[j0 + 5] = a5;
                crow[j0 + 6] = a6;
                crow[j0 + 7] = a7;
            }
            for (; j0 < n; ++j0) { // ragged column tail
                std::int32_t a = crow[j0];
                for (std::int64_t kk = k0; kk < kEnd; ++kk) {
                    const std::int32_t xv = xrow[kk];
                    if (xv != 0)
                        a += xv * static_cast<std::int32_t>(wq[kk * n + j0]);
                }
                crow[j0] = a;
            }
        }
    }
}

void
quantizeScalar(const float* src, std::int64_t n, float invScale, int lim,
               std::int8_t* out)
{
    for (std::int64_t i = 0; i < n; ++i) {
        float v = src[i] * invScale;
        v = std::nearbyint(v);
        if (v > static_cast<float>(lim))
            v = static_cast<float>(lim);
        if (v < static_cast<float>(-lim))
            v = static_cast<float>(-lim);
        out[i] = static_cast<std::int8_t>(v);
    }
}

float
absMaxScalar(const float* src, std::int64_t n)
{
    float m = 0.0f;
    for (std::int64_t i = 0; i < n; ++i)
        m = std::max(m, std::fabs(src[i]));
    return m;
}

} // namespace create::simd::detail
