#pragma once

/**
 * @file
 * Behavioural model of the distributed digital LDO used for autonomy-
 * adaptive voltage scaling (paper Sec. 5.3, Table 2, Fig. 12).
 *
 * Spec sheet reproduced from the paper (built on the event-driven
 * domino-sampling LDO of Kim et al., JSSC'21):
 *   output range 0.6-0.9 V in 10 mV steps, 90 ns / 50 mV transient
 *   response, 99.8% peak current efficiency at 15.2 A, 0.43 mm^2.
 */

#include <cstdint>

namespace create {

/** Static LDO specifications (Table 2). */
struct LdoSpec
{
    double vMin = 0.60;            //!< volts
    double vMax = 0.90;            //!< volts
    double vStep = 0.010;          //!< 10 mV resolution
    double slewNsPer50mV = 90.0;   //!< transient response time
    double peakCurrentEff = 0.998; //!< at iLoadMax
    double iLoadMaxA = 15.2;
    double areaMm2 = 0.43;
    double currentDensityApermm2 = 35.0;
    double technologyNm = 22.0;
};

/** Stateful digital LDO: quantizes requests and tracks switching cost. */
class DigitalLdo
{
  public:
    explicit DigitalLdo(LdoSpec spec = {});

    /**
     * Request a new output voltage.
     *
     * The request is clamped to [vMin, vMax] and rounded to the step grid.
     * @return transition latency in nanoseconds (0 if already there).
     */
    double set(double targetV);

    /** Current output voltage. */
    double vout() const { return vout_; }

    /** Clamp + quantize a voltage to the LDO grid without applying it. */
    double quantize(double v) const;

    /** Number of voltage transitions so far. */
    std::uint64_t transitions() const { return transitions_; }

    /** Total nanoseconds spent slewing. */
    double totalTransitionNs() const { return totalTransitionNs_; }

    /** Worst single-transition latency possible (full range swing). */
    double worstCaseLatencyNs() const;

    const LdoSpec& spec() const { return spec_; }

    void resetStats();

  private:
    LdoSpec spec_;
    double vout_;
    std::uint64_t transitions_ = 0;
    double totalTransitionNs_ = 0.0;
};

} // namespace create
