#pragma once

/**
 * @file
 * Functional model of the weight-stationary systolic array with the
 * anomaly-detection output row (paper Fig. 8(b)).
 *
 * This model is used for hardware-facing validation: it tiles a GEMM onto
 * an RxC PE grid, counts pipeline cycles the way SCALE-Sim does, applies
 * per-cycle bit flips to the column accumulators, and passes final results
 * through the comparator+mux anomaly-detection units. Tests assert that it
 * is numerically equivalent to the fast faultyLinear() pipeline (which is
 * what the models actually run on).
 */

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "hw/compute_context.hpp"

namespace create {

/** Geometry / clock of one systolic array instance. */
struct SystolicConfig
{
    int rows = 128;        //!< PE rows (K dimension)
    int cols = 128;        //!< PE columns (N dimension)
    double clockNs = 2.0;  //!< cycle time at nominal voltage
};

/** Result of a systolic GEMM run. */
struct SystolicResult
{
    std::vector<std::int32_t> acc; //!< MxN accumulators (post AD if enabled)
    std::uint64_t cycles = 0;
    std::uint64_t macs = 0;
    std::uint64_t anomaliesCleared = 0;
    std::uint64_t flips = 0;
};

/** Weight-stationary RxC systolic array with output-stage AD units. */
class SystolicArray
{
  public:
    explicit SystolicArray(SystolicConfig cfg = {});

    /**
     * Run xq(MxK) @ wq(KxN) with optional per-bit injection.
     *
     * @param bitRates per-bit flip probabilities applied to each element's
     *        final accumulation (empty = clean).
     * @param adBoundAcc AD valid bound in accumulator units (<=0 disables).
     */
    SystolicResult run(const std::int8_t* xq, std::int64_t m, std::int64_t k,
                       const std::int8_t* wq, std::int64_t n,
                       const std::vector<double>& bitRates, double adBoundAcc,
                       Rng& rng) const;

    /** Pipeline cycles for one GEMM (SCALE-Sim weight-stationary formula). */
    std::uint64_t cyclesFor(std::int64_t m, std::int64_t k, std::int64_t n) const;

    const SystolicConfig& config() const { return cfg_; }

  private:
    SystolicConfig cfg_;
};

} // namespace create
