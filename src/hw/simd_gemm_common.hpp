#pragma once

/** @file Shared helpers for the paired-K SIMD int-GEMM kernels (AVX2 and
 *  AVX-512 TUs): activation-pair broadcast material and the SSE2-width
 *  ragged-column tail. Header-only and SSE2-level, so every x86 kernel TU
 *  can inline it regardless of its own -m flags. */

#include <cstdint>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace create::simd::detail {

#if defined(__SSE2__)

/** Broadcastable (x[kk], x[kk+1]) int16 pair from one activation row
 *  (odd-K tail pairs the last row with zero). */
inline std::int32_t
xPairI32(const std::int8_t* xrow, std::int64_t kk, std::int64_t k)
{
    const std::uint32_t lo = static_cast<std::uint16_t>(xrow[kk]);
    const std::uint32_t hi =
        kk + 1 < k
            ? static_cast<std::uint32_t>(static_cast<std::uint16_t>(xrow[kk + 1]))
            : 0u;
    return static_cast<std::int32_t>(lo | (hi << 16));
}

/** Finish one GEMM row's ragged columns [j0, n): 8-wide pmaddwd steps
 *  (the SSE2 golden scheme) plus a scalar remainder. Exact. */
inline void
gemmRowTailColsSse2(const std::int8_t* xrow, std::int64_t k,
                    const std::int8_t* wq, std::int64_t n, std::int32_t* crow,
                    std::int64_t j0)
{
    const __m128i vzero = _mm_setzero_si128();
    for (; j0 + 8 <= n; j0 += 8) {
        __m128i acc0 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(crow + j0));
        __m128i acc1 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(crow + j0 + 4));
        for (std::int64_t kk = 0; kk < k; kk += 2) {
            const std::int32_t pair = xPairI32(xrow, kk, k);
            if (pair == 0)
                continue;
            const __m128i xp = _mm_set1_epi32(pair);
            const __m128i w0 = _mm_loadl_epi64(
                reinterpret_cast<const __m128i*>(wq + kk * n + j0));
            const __m128i w1 =
                kk + 1 < k ? _mm_loadl_epi64(reinterpret_cast<const __m128i*>(
                                 wq + (kk + 1) * n + j0))
                           : vzero;
            const __m128i inter = _mm_unpacklo_epi8(w0, w1);
            const __m128i lo16 =
                _mm_srai_epi16(_mm_unpacklo_epi8(vzero, inter), 8);
            const __m128i hi16 =
                _mm_srai_epi16(_mm_unpackhi_epi8(vzero, inter), 8);
            acc0 = _mm_add_epi32(acc0, _mm_madd_epi16(lo16, xp));
            acc1 = _mm_add_epi32(acc1, _mm_madd_epi16(hi16, xp));
        }
        _mm_storeu_si128(reinterpret_cast<__m128i*>(crow + j0), acc0);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(crow + j0 + 4), acc1);
    }
    for (; j0 < n; ++j0) {
        std::int32_t a = crow[j0];
        for (std::int64_t kk = 0; kk < k; ++kk) {
            const std::int32_t xv = xrow[kk];
            if (xv != 0)
                a += xv * static_cast<std::int32_t>(wq[kk * n + j0]);
        }
        crow[j0] = a;
    }
}

#endif // __SSE2__

} // namespace create::simd::detail
