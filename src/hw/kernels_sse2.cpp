/** @file SSE2 kernels -- the golden reference SIMD tier.
 *
 *  These are the PR-3 hot-path kernels moved verbatim behind the
 *  dispatcher: always built on x86-64 (SSE2 is part of the base ABI), and
 *  the variant the CI `CREATE_FORCE_ISA=sse2` leg pins so the fallback
 *  stays exercised on AVX-capable runners. */

#include "hw/simd_kernels.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include <cstring>

namespace create::simd::detail {

#if defined(__SSE2__)

bool
sse2KernelsCompiled()
{
    return true;
}

void
intGemmSse2(const std::int8_t* xq, std::int64_t m, std::int64_t k,
            const std::int8_t* wq, std::int64_t n, std::int32_t* acc)
{
    // SSE2 micro-kernel: 8 output columns per step, two K rows fused per
    // multiply. Weights of rows kk/kk+1 are interleaved bytewise and
    // sign-extended to int16 pairs (w[kk][j], w[kk+1][j]); pmaddwd against
    // the broadcast activation pair (x[kk], x[kk+1]) then produces the
    // per-column two-term partial sums directly in int32 lanes. Integer
    // accumulation is exact, so the reordering is bit-identical to the
    // scalar kernel.
    const __m128i vzero = _mm_setzero_si128();
    for (std::int64_t i = 0; i < m; ++i) {
        const std::int8_t* xrow = xq + i * k;
        std::int32_t* crow = acc + i * n;
        std::int64_t j0 = 0;
        for (; j0 + 8 <= n; j0 += 8) {
            __m128i acc0 = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(crow + j0));
            __m128i acc1 = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(crow + j0 + 4));
            std::int64_t kk = 0;
            for (; kk + 2 <= k; kk += 2) {
                const std::int32_t x0 = xrow[kk], x1 = xrow[kk + 1];
                if ((x0 | x1) == 0)
                    continue;
                const std::uint32_t pair =
                    static_cast<std::uint16_t>(x0) |
                    (static_cast<std::uint32_t>(static_cast<std::uint16_t>(x1))
                     << 16);
                const __m128i xpair =
                    _mm_set1_epi32(static_cast<std::int32_t>(pair));
                const __m128i w0 = _mm_loadl_epi64(
                    reinterpret_cast<const __m128i*>(wq + kk * n + j0));
                const __m128i w1 = _mm_loadl_epi64(
                    reinterpret_cast<const __m128i*>(wq + (kk + 1) * n + j0));
                const __m128i inter = _mm_unpacklo_epi8(w0, w1);
                const __m128i lo16 =
                    _mm_srai_epi16(_mm_unpacklo_epi8(vzero, inter), 8);
                const __m128i hi16 =
                    _mm_srai_epi16(_mm_unpackhi_epi8(vzero, inter), 8);
                acc0 = _mm_add_epi32(acc0, _mm_madd_epi16(lo16, xpair));
                acc1 = _mm_add_epi32(acc1, _mm_madd_epi16(hi16, xpair));
            }
            if (kk < k) { // odd-K tail: pair the last row with zero
                const std::int32_t x0 = xrow[kk];
                if (x0 != 0) {
                    const __m128i xpair = _mm_set1_epi32(
                        static_cast<std::uint16_t>(x0));
                    const __m128i w0 = _mm_loadl_epi64(
                        reinterpret_cast<const __m128i*>(wq + kk * n + j0));
                    const __m128i inter = _mm_unpacklo_epi8(w0, vzero);
                    const __m128i lo16 =
                        _mm_srai_epi16(_mm_unpacklo_epi8(vzero, inter), 8);
                    const __m128i hi16 =
                        _mm_srai_epi16(_mm_unpackhi_epi8(vzero, inter), 8);
                    acc0 = _mm_add_epi32(acc0, _mm_madd_epi16(lo16, xpair));
                    acc1 = _mm_add_epi32(acc1, _mm_madd_epi16(hi16, xpair));
                }
            }
            _mm_storeu_si128(reinterpret_cast<__m128i*>(crow + j0), acc0);
            _mm_storeu_si128(reinterpret_cast<__m128i*>(crow + j0 + 4), acc1);
        }
        for (; j0 < n; ++j0) { // ragged column tail
            std::int32_t a = crow[j0];
            for (std::int64_t kk = 0; kk < k; ++kk) {
                const std::int32_t xv = xrow[kk];
                if (xv != 0)
                    a += xv * static_cast<std::int32_t>(wq[kk * n + j0]);
            }
            crow[j0] = a;
        }
    }
}

void
quantizeSse2(const float* src, std::int64_t n, float invScale, int lim,
             std::int8_t* out)
{
    // Vector path: clamp in FP32 then convert. cvtps2dq rounds per MXCSR
    // (round-to-nearest-even, the same default environment nearbyint
    // uses), and clamping before instead of after rounding cannot change
    // the saturated result, so codes are bit-identical to the scalar
    // loop for every finite input.
    const __m128 vinv = _mm_set1_ps(invScale);
    const __m128 vlim = _mm_set1_ps(static_cast<float>(lim));
    const __m128 vnlim = _mm_set1_ps(static_cast<float>(-lim));
    std::int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m128 v = _mm_mul_ps(_mm_loadu_ps(src + i), vinv);
        v = _mm_min_ps(_mm_max_ps(v, vnlim), vlim);
        __m128i q = _mm_cvtps_epi32(v);
        q = _mm_packs_epi16(_mm_packs_epi32(q, q), q);
        const std::int32_t lanes = _mm_cvtsi128_si32(q);
        std::memcpy(out + i, &lanes, 4);
    }
    if (i < n)
        quantizeScalar(src + i, n - i, invScale, lim, out + i);
}

float
absMaxSse2(const float* src, std::int64_t n)
{
    // |v| = v with the sign bit cleared; max is order-independent, so the
    // 4-lane reduction is exact for every finite input (and -0 -> 0, same
    // as fabs).
    const __m128 vsign = _mm_set1_ps(-0.0f);
    __m128 vmax = _mm_setzero_ps();
    std::int64_t i = 0;
    for (; i + 4 <= n; i += 4)
        vmax = _mm_max_ps(vmax, _mm_andnot_ps(vsign, _mm_loadu_ps(src + i)));
    float lanes[4];
    _mm_storeu_ps(lanes, vmax);
    float m = lanes[0];
    for (int l = 1; l < 4; ++l)
        m = lanes[l] > m ? lanes[l] : m;
    const float tail = absMaxScalar(src + i, n - i);
    return tail > m ? tail : m;
}

#else // !__SSE2__: non-x86 hosts fall through to the scalar kernels.

bool
sse2KernelsCompiled()
{
    return false;
}

void
intGemmSse2(const std::int8_t* xq, std::int64_t m, std::int64_t k,
            const std::int8_t* wq, std::int64_t n, std::int32_t* acc)
{
    intGemmScalar(xq, m, k, wq, n, acc);
}

void
quantizeSse2(const float* src, std::int64_t n, float invScale, int lim,
             std::int8_t* out)
{
    quantizeScalar(src, n, invScale, lim, out);
}

float
absMaxSse2(const float* src, std::int64_t n)
{
    return absMaxScalar(src, n);
}

#endif

} // namespace create::simd::detail
