#include "hw/systolic.hpp"

#include <algorithm>

#include "fault/injector.hpp"

namespace create {

SystolicArray::SystolicArray(SystolicConfig cfg) : cfg_(cfg) {}

std::uint64_t
SystolicArray::cyclesFor(std::int64_t m, std::int64_t k, std::int64_t n) const
{
    // Weight-stationary mapping: a (K x N) weight tile is pinned on the PE
    // grid; the M activation rows stream through. Per tile:
    //   rows           cycles to load weights,
    //   m + rows + cols - 2  cycles to stream and drain the pipeline.
    const auto tilesK = static_cast<std::uint64_t>((k + cfg_.rows - 1) / cfg_.rows);
    const auto tilesN = static_cast<std::uint64_t>((n + cfg_.cols - 1) / cfg_.cols);
    const std::uint64_t perTile =
        static_cast<std::uint64_t>(cfg_.rows) +
        static_cast<std::uint64_t>(m + cfg_.rows + cfg_.cols - 2);
    return tilesK * tilesN * perTile;
}

SystolicResult
SystolicArray::run(const std::int8_t* xq, std::int64_t m, std::int64_t k,
                   const std::int8_t* wq, std::int64_t n,
                   const std::vector<double>& bitRates, double adBoundAcc,
                   Rng& rng) const
{
    SystolicResult res;
    res.acc.assign(static_cast<std::size_t>(m * n), 0);
    res.cycles = cyclesFor(m, k, n);
    res.macs = static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(k) *
               static_cast<std::uint64_t>(n);

    // Column-accumulation semantics: partial sums flow down each column,
    // one PE row (one K element) added per cycle. We emulate tile by tile
    // so the accumulation order matches the hardware dataflow.
    for (std::int64_t k0 = 0; k0 < k; k0 += cfg_.rows) {
        const std::int64_t kEnd = std::min<std::int64_t>(k0 + cfg_.rows, k);
        for (std::int64_t n0 = 0; n0 < n; n0 += cfg_.cols) {
            const std::int64_t nEnd = std::min<std::int64_t>(n0 + cfg_.cols, n);
            for (std::int64_t i = 0; i < m; ++i) {
                std::int32_t* out = res.acc.data() + i * n;
                for (std::int64_t j = n0; j < nEnd; ++j) {
                    std::int32_t sum = out[j];
                    for (std::int64_t kk = k0; kk < kEnd; ++kk) {
                        sum += static_cast<std::int32_t>(xq[i * k + kk]) *
                               static_cast<std::int32_t>(wq[kk * n + j]);
                    }
                    out[j] = sum;
                }
            }
        }
    }

    if (!bitRates.empty()) {
        const auto stats =
            BitFlipInjector::inject(res.acc.data(), res.acc.size(), bitRates, rng);
        res.flips = stats.flips;
    }

    // Output-stage anomaly-detection units: one comparator+mux per column.
    if (adBoundAcc > 0.0) {
        const auto lim = static_cast<std::int64_t>(std::min(adBoundAcc, 8388607.0));
        for (auto& a : res.acc) {
            if (a > lim || a < -lim) {
                a = 0;
                ++res.anomaliesCleared;
            }
        }
    }
    return res;
}

} // namespace create
