#include "hw/kernel_dispatch.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "hw/simd_kernels.hpp"

namespace create::simd {

namespace {

using namespace detail;

const KernelTable kScalarTable{Isa::Scalar, &intGemmScalar, &quantizeScalar,
                               &absMaxScalar};
const KernelTable kSse2Table{Isa::Sse2, &intGemmSse2, &quantizeSse2,
                             &absMaxSse2};
const KernelTable kAvx2Table{Isa::Avx2, &intGemmAvx2, &quantizeAvx2,
                             &absMaxAvx2};
const KernelTable kAvx512Table{Isa::Avx512Vnni, &intGemmAvx512,
                               &quantizeAvx512, &absMaxAvx512};

const KernelTable*
tableFor(Isa isa)
{
    switch (isa) {
      case Isa::Scalar: return &kScalarTable;
      case Isa::Sse2: return &kSse2Table;
      case Isa::Avx2: return &kAvx2Table;
      case Isa::Avx512Vnni: return &kAvx512Table;
    }
    return &kScalarTable;
}

/** CPUID says the host can run `isa` AND the TU was really compiled for
 *  it (a tier whose TU fell back to delegating wrappers is never
 *  advertised -- forcing it would silently run a different kernel). */
bool
hostSupports(Isa isa)
{
    switch (isa) {
      case Isa::Scalar:
        return true;
      case Isa::Sse2:
        return sse2KernelsCompiled(); // base x86-64 ABI; no CPUID needed
      case Isa::Avx2:
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
        return avx2KernelsCompiled() && __builtin_cpu_supports("avx2");
#else
        return false;
#endif
      case Isa::Avx512Vnni:
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
        return avx512KernelsCompiled() &&
               __builtin_cpu_supports("avx512f") &&
               __builtin_cpu_supports("avx512bw") &&
               __builtin_cpu_supports("avx512vnni");
#else
        return false;
#endif
    }
    return false;
}

std::atomic<const KernelTable*> gActive{nullptr};
std::string gForced; // CREATE_FORCE_ISA value seen at init ("" = none)
std::once_flag gInitOnce;

void
initOnce()
{
    std::call_once(gInitOnce, [] {
        Isa pick = best();
        if (const char* env = std::getenv("CREATE_FORCE_ISA")) {
            gForced = env;
            Isa forced;
            if (!parseIsa(gForced, &forced)) {
                std::fprintf(stderr,
                             "[simd] CREATE_FORCE_ISA=%s: unknown ISA "
                             "(expected scalar|sse2|avx2|avx512vnni); "
                             "using %s\n",
                             env, isaName(pick));
            } else if (!hostSupports(forced)) {
                std::fprintf(stderr,
                             "[simd] CREATE_FORCE_ISA=%s: not supported on "
                             "this host; using %s\n",
                             env, isaName(pick));
            } else {
                pick = forced;
            }
        }
        gActive.store(tableFor(pick), std::memory_order_release);
    });
}

} // namespace

const KernelTable&
active()
{
    const KernelTable* t = gActive.load(std::memory_order_acquire);
    if (!t) {
        initOnce();
        t = gActive.load(std::memory_order_acquire);
    }
    return *t;
}

Isa
activeIsa()
{
    return active().isa;
}

bool
setActive(Isa isa)
{
    initOnce();
    if (!hostSupports(isa))
        return false;
    gActive.store(tableFor(isa), std::memory_order_release);
    return true;
}

std::vector<Isa>
supported()
{
    std::vector<Isa> out;
    for (Isa isa :
         {Isa::Scalar, Isa::Sse2, Isa::Avx2, Isa::Avx512Vnni}) {
        if (hostSupports(isa))
            out.push_back(isa);
    }
    return out;
}

Isa
best()
{
    Isa pick = Isa::Scalar;
    for (Isa isa : {Isa::Sse2, Isa::Avx2, Isa::Avx512Vnni}) {
        if (hostSupports(isa))
            pick = isa;
    }
    return pick;
}

const char*
isaName(Isa isa)
{
    switch (isa) {
      case Isa::Scalar: return "scalar";
      case Isa::Sse2: return "sse2";
      case Isa::Avx2: return "avx2";
      case Isa::Avx512Vnni: return "avx512vnni";
    }
    return "?";
}

bool
parseIsa(const std::string& name, Isa* out)
{
    // Case-insensitive: the value usually arrives via the
    // CREATE_FORCE_ISA environment variable, typed by hand.
    std::string low(name);
    for (char& c : low)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (low == "scalar")
        *out = Isa::Scalar;
    else if (low == "sse2")
        *out = Isa::Sse2;
    else if (low == "avx2")
        *out = Isa::Avx2;
    else if (low == "avx512vnni" || low == "avx512")
        *out = Isa::Avx512Vnni;
    else
        return false;
    return true;
}

Isa
applyForceIsa(const std::string& value)
{
    initOnce();
    Isa pick = best();
    Isa forced;
    if (!parseIsa(value, &forced)) {
        std::fprintf(stderr,
                     "[simd] force isa '%s': unknown ISA (expected "
                     "scalar|sse2|avx2|avx512vnni); using %s\n",
                     value.c_str(), isaName(pick));
    } else if (!hostSupports(forced)) {
        std::fprintf(stderr,
                     "[simd] force isa '%s': not supported on this host; "
                     "using %s\n",
                     value.c_str(), isaName(pick));
    } else {
        pick = forced;
    }
    gActive.store(tableFor(pick), std::memory_order_release);
    return pick;
}

std::string
report()
{
    initOnce();
    std::string s = "isa=";
    s += isaName(activeIsa());
    s += " (supported:";
    for (Isa isa : supported()) {
        s += ' ';
        s += isaName(isa);
    }
    s += "; forced: ";
    s += gForced.empty() ? "no" : gForced.c_str();
    s += ')';
    return s;
}

} // namespace create::simd
