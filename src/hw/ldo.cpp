#include "hw/ldo.hpp"

#include <cmath>

namespace create {

DigitalLdo::DigitalLdo(LdoSpec spec) : spec_(spec), vout_(spec.vMax) {}

double
DigitalLdo::quantize(double v) const
{
    if (v < spec_.vMin)
        v = spec_.vMin;
    if (v > spec_.vMax)
        v = spec_.vMax;
    const double steps = std::nearbyint((v - spec_.vMin) / spec_.vStep);
    return spec_.vMin + steps * spec_.vStep;
}

double
DigitalLdo::set(double targetV)
{
    const double v = quantize(targetV);
    const double delta = std::fabs(v - vout_);
    if (delta < spec_.vStep / 2.0)
        return 0.0;
    const double latency = spec_.slewNsPer50mV * (delta / 0.050);
    vout_ = v;
    ++transitions_;
    totalTransitionNs_ += latency;
    return latency;
}

double
DigitalLdo::worstCaseLatencyNs() const
{
    return spec_.slewNsPer50mV * ((spec_.vMax - spec_.vMin) / 0.050);
}

void
DigitalLdo::resetStats()
{
    transitions_ = 0;
    totalTransitionNs_ = 0.0;
}

} // namespace create
