#include "baselines/abft.hpp"

namespace create::baselines {

CreateConfig
abftConfig(double voltage)
{
    CreateConfig cfg = CreateConfig::atVoltage(voltage, voltage);
    cfg.protection = Protection::Abft;
    return cfg;
}

double
abftExpectedAttempts(double gemmCorruptionProb)
{
    // Truncated geometric with at most 5 attempts.
    double expected = 0.0;
    double pReach = 1.0;
    for (int attempt = 1; attempt <= 5; ++attempt) {
        expected += pReach;
        pReach *= gemmCorruptionProb;
    }
    return expected;
}

} // namespace create::baselines
