#include "baselines/dmr.hpp"

namespace create::baselines {

CreateConfig
dmrConfig(double voltage)
{
    CreateConfig cfg = CreateConfig::atVoltage(voltage, voltage);
    cfg.protection = Protection::Dmr;
    return cfg;
}

double
dmrEnergyFactor(double gemmCorruptionProb)
{
    // Each attempt costs 2x; the pair disagrees when either copy is
    // corrupted (ignoring identical corruption, which is negligible).
    const double disagree =
        1.0 - (1.0 - gemmCorruptionProb) * (1.0 - gemmCorruptionProb);
    double factor = 0.0;
    double pReach = 1.0;
    for (int attempt = 0; attempt < 3; ++attempt) {
        factor += pReach * 2.0;
        pReach *= disagree;
    }
    return factor;
}

} // namespace create::baselines
