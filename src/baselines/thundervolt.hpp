#pragma once

/**
 * @file
 * ThUnderVolt-style baseline (paper Sec. 6.10, ref [40]).
 *
 * Razor-style per-PE timing-error detection with result bypass: outputs
 * whose accumulation saw a violation are dropped to zero. Detection is
 * modeled as perfect; the bypass fabric adds ~5% compute energy. At high
 * BER the zeroed outputs act like aggressive neuron pruning and degrade
 * task quality (the paper's criticism). Execution semantics live in
 * hw/faulty_gemm.cpp under Protection::ThunderVolt.
 */

#include "core/create_system.hpp"

namespace create::baselines {

/** Full-system config at `voltage` under ThUnderVolt-style bypass. */
CreateConfig thunderVoltConfig(double voltage);

/** Fraction of outputs dropped at a given per-element corruption prob. */
double thunderVoltDropRate(double elementCorruptionProb);

} // namespace create::baselines
