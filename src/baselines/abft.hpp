#pragma once

/**
 * @file
 * ABFT baseline (paper Sec. 6.10, refs [46-49]).
 *
 * Algorithm-based fault tolerance: row/column checksums detect corrupted
 * GEMMs (modeled as perfect detection); recovery recomputes the whole
 * GEMM until a clean pass (bounded retries). Checksum maintenance costs
 * ~(M+N)*K extra MACs per attempt. Below ~0.85 V the recovery loop fires
 * constantly and energy explodes -- the paper's reason ABFT is "confined"
 * above that point. Execution semantics live in hw/faulty_gemm.cpp under
 * Protection::Abft.
 */

#include "core/create_system.hpp"

namespace create::baselines {

/** Full-system config at `voltage` under ABFT protection. */
CreateConfig abftConfig(double voltage);

/** Expected attempts until a clean pass at a per-GEMM corruption prob. */
double abftExpectedAttempts(double gemmCorruptionProb);

} // namespace create::baselines
