#pragma once

/**
 * @file
 * Dual modular redundancy baseline (paper Sec. 6.10, refs [37-39]).
 *
 * Every GEMM is executed twice with independent error draws; any mismatch
 * triggers re-execution of the pair (bounded retries). Reliability is
 * high, but compute energy is at least doubled and grows further as BER
 * rises -- the paper's "prohibitive energy cost". The execution semantics
 * live in hw/faulty_gemm.cpp under Protection::Dmr; this header provides
 * the configuration builder and an analytic energy-factor model used by
 * tests and the Fig. 20 bench.
 */

#include "core/create_system.hpp"

namespace create::baselines {

/** Full-system config running both models at `voltage` under DMR. */
CreateConfig dmrConfig(double voltage);

/**
 * Expected compute-energy multiplier of DMR at a given per-GEMM corruption
 * probability (probability that one execution contains >=1 flip).
 */
double dmrEnergyFactor(double gemmCorruptionProb);

} // namespace create::baselines
