#include "baselines/thundervolt.hpp"

namespace create::baselines {

CreateConfig
thunderVoltConfig(double voltage)
{
    CreateConfig cfg = CreateConfig::atVoltage(voltage, voltage);
    cfg.protection = Protection::ThunderVolt;
    return cfg;
}

double
thunderVoltDropRate(double elementCorruptionProb)
{
    return elementCorruptionProb;
}

} // namespace create::baselines
