#pragma once

/**
 * @file
 * Episode aggregation and paper-scale energy accounting (Sec. 6.1
 * evaluation metrics: success rate, average steps, average power, total
 * energy; effective voltage).
 *
 * The behavioural simulation decides *how many* planner invocations and
 * controller steps an episode needs and at *what* voltages they ran; the
 * energy model prices them at the paper-scale per-invocation costs
 * (Table 4: 5,344 GOps per planner call, 102 GOps per controller step,
 * 43 MOps per entropy prediction), so Joule-level results keep the
 * magnitudes of Figs. 16-18.
 */

#include <cstddef>
#include <string>
#include <vector>

#include "agent/agent.hpp"
#include "common/metrics.hpp"
#include "common/serialize.hpp"
#include "perf/energy.hpp"
#include "perf/workloads.hpp"

namespace create {

/** Prices episodes at paper-scale workload costs. */
class PaperEnergyModel
{
  public:
    /** Defaults to the JARVIS-1 stack. */
    PaperEnergyModel();
    PaperEnergyModel(Workload plannerW, Workload controllerW,
                     Workload predictorW);

    /** Computational energy of one episode in joules. */
    double episodeComputeJ(const EpisodeResult& r) const;

    /** Planner-only / controller-only / predictor-only components. */
    double plannerJ(const EpisodeResult& r) const;
    double controllerJ(const EpisodeResult& r) const;
    double predictorJ(const EpisodeResult& r) const;

    /** Energy per operation at nominal voltage (J/op). */
    double jPerOpNominal() const { return 0.107e-12; }

    const Workload& plannerWorkload() const { return plannerW_; }
    const Workload& controllerWorkload() const { return controllerW_; }

  private:
    Workload plannerW_, controllerW_, predictorW_;
};

/** Aggregated statistics over repeated episodes (>=100 in the paper). */
struct TaskStats
{
    int episodes = 0;
    int successes = 0;
    double successRate = 0.0;
    double avgStepsSuccess = 0.0; //!< mean steps among successful trials
    double avgComputeJ = 0.0;     //!< includes failed episodes (full run)
    double avgPlannerEffV = 0.9;
    double avgControllerEffV = 0.9;
    double avgPlannerInvocations = 0.0;
    double avgPlannerV2 = 1.0;    //!< mean (V/Vnom)^2 over planner compute
    double avgControllerV2 = 1.0; //!< mean (V/Vnom)^2 over controller compute
};

/**
 * The unit of record of the campaign result pipeline: one episode's
 * behavioural outcome plus its paper-scale compute energy, priced once at
 * completion time. A cell's TaskStats is a pure deterministic fold
 * (aggregate()) over an ordered ledger of these, which is why a persisted
 * reps=120 ledger can serve any reps<=120 request bit-identically by
 * slicing the prefix.
 */
struct EpisodeRecord
{
    EpisodeResult result;
    double computeJ = 0.0; //!< PaperEnergyModel::episodeComputeJ(result)
    /**
     * Observability payload (store schema v3). Optional: present=false
     * for records read from v2 stores or collected with the registry
     * disabled. Never an input to aggregate() -- the TaskStats fold sees
     * only result+computeJ, which is what keeps metrics-on and
     * metrics-off campaigns bit-identical.
     */
    EpisodeMetrics metrics;
};

/**
 * Name -> member mapping of TaskStats' derived (double) fields; shared by
 * the sweep store's legacy v1 read path and the sweep-diff comparator so
 * a new field only needs to be added here.
 */
inline constexpr std::pair<const char*, double TaskStats::*>
    kTaskStatFields[] = {
        {"successRate", &TaskStats::successRate},
        {"avgStepsSuccess", &TaskStats::avgStepsSuccess},
        {"avgComputeJ", &TaskStats::avgComputeJ},
        {"avgPlannerEffV", &TaskStats::avgPlannerEffV},
        {"avgControllerEffV", &TaskStats::avgControllerEffV},
        {"avgPlannerInvocations", &TaskStats::avgPlannerInvocations},
        {"avgPlannerV2", &TaskStats::avgPlannerV2},
        {"avgControllerV2", &TaskStats::avgControllerV2},
};

/**
 * The pure fold: aggregate the first `n` records of an episode ledger.
 * Deterministic in the record values alone (the energy was priced when
 * the record was made), so folding a ledger read back from a store is
 * bit-identical to folding the live results it was written from.
 */
TaskStats aggregate(const EpisodeRecord* records, std::size_t n);
TaskStats aggregate(const std::vector<EpisodeRecord>& records);

/** Aggregate episode results with paper-scale energy pricing. */
TaskStats aggregate(const std::vector<EpisodeResult>& results,
                    const PaperEnergyModel& energy);

/**
 * JsonRecord round trip for one ledger entry. Every field is written
 * through the %.17g path of common/serialize, so a write/read round trip
 * reproduces the episode bit-exactly (integer counters up to 2^53 are
 * exact in a double; episode step/flip counts sit far below that).
 */
JsonRecord episodeToRecord(std::string name, const EpisodeRecord& record);

/** Parse a record written by episodeToRecord. False if fields are missing. */
bool episodeFromRecord(const JsonRecord& rec, EpisodeRecord& out);

} // namespace create
