#pragma once

/**
 * @file
 * Episode aggregation and paper-scale energy accounting (Sec. 6.1
 * evaluation metrics: success rate, average steps, average power, total
 * energy; effective voltage).
 *
 * The behavioural simulation decides *how many* planner invocations and
 * controller steps an episode needs and at *what* voltages they ran; the
 * energy model prices them at the paper-scale per-invocation costs
 * (Table 4: 5,344 GOps per planner call, 102 GOps per controller step,
 * 43 MOps per entropy prediction), so Joule-level results keep the
 * magnitudes of Figs. 16-18.
 */

#include <vector>

#include "agent/agent.hpp"
#include "perf/energy.hpp"
#include "perf/workloads.hpp"

namespace create {

/** Prices episodes at paper-scale workload costs. */
class PaperEnergyModel
{
  public:
    /** Defaults to the JARVIS-1 stack. */
    PaperEnergyModel();
    PaperEnergyModel(Workload plannerW, Workload controllerW,
                     Workload predictorW);

    /** Computational energy of one episode in joules. */
    double episodeComputeJ(const EpisodeResult& r) const;

    /** Planner-only / controller-only / predictor-only components. */
    double plannerJ(const EpisodeResult& r) const;
    double controllerJ(const EpisodeResult& r) const;
    double predictorJ(const EpisodeResult& r) const;

    /** Energy per operation at nominal voltage (J/op). */
    double jPerOpNominal() const { return 0.107e-12; }

    const Workload& plannerWorkload() const { return plannerW_; }
    const Workload& controllerWorkload() const { return controllerW_; }

  private:
    Workload plannerW_, controllerW_, predictorW_;
};

/** Aggregated statistics over repeated episodes (>=100 in the paper). */
struct TaskStats
{
    int episodes = 0;
    int successes = 0;
    double successRate = 0.0;
    double avgStepsSuccess = 0.0; //!< mean steps among successful trials
    double avgComputeJ = 0.0;     //!< includes failed episodes (full run)
    double avgPlannerEffV = 0.9;
    double avgControllerEffV = 0.9;
    double avgPlannerInvocations = 0.0;
    double avgPlannerV2 = 1.0;    //!< mean (V/Vnom)^2 over planner compute
    double avgControllerV2 = 1.0; //!< mean (V/Vnom)^2 over controller compute
};

/** Aggregate episode results with paper-scale energy pricing. */
TaskStats aggregate(const std::vector<EpisodeResult>& results,
                    const PaperEnergyModel& energy);

} // namespace create
