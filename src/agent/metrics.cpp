#include "agent/metrics.hpp"

#include <cstring>
#include <map>

namespace create {

PaperEnergyModel::PaperEnergyModel()
    : PaperEnergyModel(workloads::jarvisPlanner(),
                       workloads::jarvisController(),
                       workloads::entropyPredictor())
{
}

PaperEnergyModel::PaperEnergyModel(Workload plannerW, Workload controllerW,
                                   Workload predictorW)
    : plannerW_(std::move(plannerW)), controllerW_(std::move(controllerW)),
      predictorW_(std::move(predictorW))
{
}

double
PaperEnergyModel::plannerJ(const EpisodeResult& r) const
{
    return r.plannerInvocations * plannerW_.paperGops * 1e9 *
           jPerOpNominal() * r.plannerV2Ratio;
}

double
PaperEnergyModel::controllerJ(const EpisodeResult& r) const
{
    return static_cast<double>(r.steps) * controllerW_.paperGops * 1e9 *
           jPerOpNominal() * r.controllerV2Ratio;
}

double
PaperEnergyModel::predictorJ(const EpisodeResult& r) const
{
    // Predictor always runs at nominal voltage (error-free prediction).
    return r.predictorInvocations * predictorW_.paperGops * 1e9 *
           jPerOpNominal();
}

double
PaperEnergyModel::episodeComputeJ(const EpisodeResult& r) const
{
    return plannerJ(r) + controllerJ(r) + predictorJ(r);
}

TaskStats
aggregate(const EpisodeRecord* records, std::size_t n)
{
    TaskStats s;
    s.episodes = static_cast<int>(n);
    double stepsSuccess = 0.0;
    double vP = 0.0, vC = 0.0, inv = 0.0;
    double v2P = 0.0, v2C = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const EpisodeResult& r = records[i].result;
        if (r.success) {
            ++s.successes;
            stepsSuccess += r.steps;
        }
        s.avgComputeJ += records[i].computeJ;
        vP += r.plannerEffV;
        vC += r.controllerEffV;
        inv += r.plannerInvocations;
        v2P += r.plannerV2Ratio;
        v2C += r.controllerV2Ratio;
    }
    if (s.episodes > 0) {
        s.successRate = static_cast<double>(s.successes) / s.episodes;
        s.avgComputeJ /= s.episodes;
        s.avgPlannerEffV = vP / s.episodes;
        s.avgControllerEffV = vC / s.episodes;
        s.avgPlannerInvocations = inv / s.episodes;
        s.avgPlannerV2 = v2P / s.episodes;
        s.avgControllerV2 = v2C / s.episodes;
    }
    if (s.successes > 0)
        s.avgStepsSuccess = stepsSuccess / s.successes;
    return s;
}

TaskStats
aggregate(const std::vector<EpisodeRecord>& records)
{
    return aggregate(records.data(), records.size());
}

TaskStats
aggregate(const std::vector<EpisodeResult>& results,
          const PaperEnergyModel& energy)
{
    // Price each episode, then run the pure fold: the sums accumulate in
    // the same order over the same doubles as the pre-ledger loop did, so
    // the aggregate is bit-identical.
    std::vector<EpisodeRecord> records;
    records.reserve(results.size());
    for (const auto& r : results)
        records.push_back({r, energy.episodeComputeJ(r)});
    return aggregate(records);
}

namespace {

/** EpisodeResult <-> JsonRecord numeric field mapping. */
struct EpisodeField
{
    const char* key;
    double (*get)(const EpisodeRecord&);
    void (*set)(EpisodeRecord&, double);
};

constexpr EpisodeField kEpisodeFields[] = {
    {"success", [](const EpisodeRecord& e) {
         return e.result.success ? 1.0 : 0.0;
     },
     [](EpisodeRecord& e, double v) { e.result.success = v != 0.0; }},
    {"steps", [](const EpisodeRecord& e) {
         return static_cast<double>(e.result.steps);
     },
     [](EpisodeRecord& e, double v) { e.result.steps = static_cast<int>(v); }},
    {"plannerInvocations",
     [](const EpisodeRecord& e) {
         return static_cast<double>(e.result.plannerInvocations);
     },
     [](EpisodeRecord& e, double v) {
         e.result.plannerInvocations = static_cast<int>(v);
     }},
    {"predictorInvocations",
     [](const EpisodeRecord& e) {
         return static_cast<double>(e.result.predictorInvocations);
     },
     [](EpisodeRecord& e, double v) {
         e.result.predictorInvocations = static_cast<int>(v);
     }},
    {"subtasksCompleted",
     [](const EpisodeRecord& e) {
         return static_cast<double>(e.result.subtasksCompleted);
     },
     [](EpisodeRecord& e, double v) {
         e.result.subtasksCompleted = static_cast<int>(v);
     }},
    {"plannerV2Ratio",
     [](const EpisodeRecord& e) { return e.result.plannerV2Ratio; },
     [](EpisodeRecord& e, double v) { e.result.plannerV2Ratio = v; }},
    {"controllerV2Ratio",
     [](const EpisodeRecord& e) { return e.result.controllerV2Ratio; },
     [](EpisodeRecord& e, double v) { e.result.controllerV2Ratio = v; }},
    {"plannerEffV",
     [](const EpisodeRecord& e) { return e.result.plannerEffV; },
     [](EpisodeRecord& e, double v) { e.result.plannerEffV = v; }},
    {"controllerEffV",
     [](const EpisodeRecord& e) { return e.result.controllerEffV; },
     [](EpisodeRecord& e, double v) { e.result.controllerEffV = v; }},
    {"bitFlips",
     [](const EpisodeRecord& e) {
         return static_cast<double>(e.result.bitFlips);
     },
     [](EpisodeRecord& e, double v) {
         e.result.bitFlips = static_cast<std::uint64_t>(v);
     }},
    {"anomaliesCleared",
     [](const EpisodeRecord& e) {
         return static_cast<double>(e.result.anomaliesCleared);
     },
     [](EpisodeRecord& e, double v) {
         e.result.anomaliesCleared = static_cast<std::uint64_t>(v);
     }},
    {"computeJ", [](const EpisodeRecord& e) { return e.computeJ; },
     [](EpisodeRecord& e, double v) { e.computeJ = v; }},
};

} // namespace

JsonRecord
episodeToRecord(std::string name, const EpisodeRecord& record)
{
    JsonRecord rec;
    rec.name = std::move(name);
    rec.numbers.reserve(std::size(kEpisodeFields));
    for (const auto& f : kEpisodeFields)
        rec.numbers.emplace_back(f.key, f.get(record));
    // Schema-v3 optional block: absent entirely when the registry was off,
    // so a metrics-off store is byte-identical to a v2-era one record-wise.
    // Counters fit doubles exactly up to 2^53; episode-scale tallies sit
    // far below that, so the %.17g round trip is lossless.
    if (record.metrics.present) {
        const EpisodeMetrics& m = record.metrics;
        rec.numbers.emplace_back("wallMs", m.wallMs);
        for (const auto& f : kEpisodeMetricFields)
            rec.numbers.emplace_back(f.first,
                                     static_cast<double>(m.*(f.second)));
        for (const auto& [tag, c] : m.layers)
            for (const auto& f : kLayerFaultFields)
                if (c.*(f.second) != 0)
                    rec.numbers.emplace_back(
                        std::string(kLayerFieldPrefix) + tag + "." + f.first,
                        static_cast<double>(c.*(f.second)));
    }
    return rec;
}

bool
episodeFromRecord(const JsonRecord& rec, EpisodeRecord& out)
{
    out = EpisodeRecord{};
    for (const auto& f : kEpisodeFields) {
        bool found = false;
        for (const auto& [key, value] : rec.numbers) {
            if (key == f.key) {
                f.set(out, value);
                found = true;
                break;
            }
        }
        if (!found)
            return false;
    }
    // Optional metrics block: a v2 record simply has none of these keys,
    // and the episode still parses (metrics.present stays false).
    std::map<std::string, LayerFaultCounters> layerMap;
    const std::size_t prefixLen = std::strlen(kLayerFieldPrefix);
    for (const auto& [key, value] : rec.numbers) {
        if (key == "wallMs") {
            out.metrics.present = true;
            out.metrics.wallMs = value;
            continue;
        }
        bool matched = false;
        for (const auto& f : kEpisodeMetricFields) {
            if (key == f.first) {
                out.metrics.*(f.second) = static_cast<std::uint64_t>(value);
                matched = true;
                break;
            }
        }
        if (matched || key.compare(0, prefixLen, kLayerFieldPrefix) != 0)
            continue;
        // "L.<tag>.<field>": tags may contain dots, the field name cannot.
        const std::size_t dot = key.rfind('.');
        if (dot == std::string::npos || dot <= prefixLen)
            continue;
        const std::string tag = key.substr(prefixLen, dot - prefixLen);
        const std::string field = key.substr(dot + 1);
        for (const auto& f : kLayerFaultFields) {
            if (field == f.first) {
                layerMap[tag].*(f.second) =
                    static_cast<std::uint64_t>(value);
                break;
            }
        }
    }
    out.metrics.layers.assign(layerMap.begin(), layerMap.end());
    return true;
}

} // namespace create
