#include "agent/metrics.hpp"

namespace create {

PaperEnergyModel::PaperEnergyModel()
    : PaperEnergyModel(workloads::jarvisPlanner(),
                       workloads::jarvisController(),
                       workloads::entropyPredictor())
{
}

PaperEnergyModel::PaperEnergyModel(Workload plannerW, Workload controllerW,
                                   Workload predictorW)
    : plannerW_(std::move(plannerW)), controllerW_(std::move(controllerW)),
      predictorW_(std::move(predictorW))
{
}

double
PaperEnergyModel::plannerJ(const EpisodeResult& r) const
{
    return r.plannerInvocations * plannerW_.paperGops * 1e9 *
           jPerOpNominal() * r.plannerV2Ratio;
}

double
PaperEnergyModel::controllerJ(const EpisodeResult& r) const
{
    return static_cast<double>(r.steps) * controllerW_.paperGops * 1e9 *
           jPerOpNominal() * r.controllerV2Ratio;
}

double
PaperEnergyModel::predictorJ(const EpisodeResult& r) const
{
    // Predictor always runs at nominal voltage (error-free prediction).
    return r.predictorInvocations * predictorW_.paperGops * 1e9 *
           jPerOpNominal();
}

double
PaperEnergyModel::episodeComputeJ(const EpisodeResult& r) const
{
    return plannerJ(r) + controllerJ(r) + predictorJ(r);
}

TaskStats
aggregate(const std::vector<EpisodeResult>& results,
          const PaperEnergyModel& energy)
{
    TaskStats s;
    s.episodes = static_cast<int>(results.size());
    double stepsSuccess = 0.0;
    double vP = 0.0, vC = 0.0, inv = 0.0;
    double v2P = 0.0, v2C = 0.0;
    for (const auto& r : results) {
        if (r.success) {
            ++s.successes;
            stepsSuccess += r.steps;
        }
        s.avgComputeJ += energy.episodeComputeJ(r);
        vP += r.plannerEffV;
        vC += r.controllerEffV;
        inv += r.plannerInvocations;
        v2P += r.plannerV2Ratio;
        v2C += r.controllerV2Ratio;
    }
    if (s.episodes > 0) {
        s.successRate = static_cast<double>(s.successes) / s.episodes;
        s.avgComputeJ /= s.episodes;
        s.avgPlannerEffV = vP / s.episodes;
        s.avgControllerEffV = vC / s.episodes;
        s.avgPlannerInvocations = inv / s.episodes;
        s.avgPlannerV2 = v2P / s.episodes;
        s.avgControllerV2 = v2C / s.episodes;
    }
    if (s.successes > 0)
        s.avgStepsSuccess = stepsSuccess / s.successes;
    return s;
}

} // namespace create
