#pragma once

/**
 * @file
 * EmbodiedAgent: the planner/controller pipeline (paper Fig. 1(a), Sec. 2.1).
 *
 * One episode: the planner decomposes the task into subtasks; the
 * controller produces action logits each step and actions are sampled
 * from them. If a subtask exceeds its step budget the planner is
 * re-invoked with the current progress (the paper's 600-step re-planning
 * rule; scaled here to 200 with the world, DESIGN.md substitution #2).
 * The episode fails when the total step cap is exceeded (paper: 12,000;
 * here 2,000).
 *
 * The planner and controller run under separate ComputeContexts so they
 * can sit at different operating voltages (CREATE applies AD+WR to the
 * planner and AD+VS to the controller). Hooks let CREATE's voltage scaler
 * adjust the controller context every step and let benches record logits.
 */

#include "env/mineworld.hpp"
#include "hw/compute_context.hpp"
#include "models/model_zoo.hpp"

namespace create {

/**
 * Outcome + accounting of one episode. This is the atom of the whole
 * result pipeline: campaigns persist episodes (see EpisodeRecord in
 * agent/metrics.hpp for the priced, serializable form), and every
 * aggregate is a deterministic fold over an ordered run of them.
 */
struct EpisodeResult
{
    bool success = false;
    int steps = 0; //!< controller steps actually executed (failed episodes
                   //!< that exhaust their plan early bill only what ran)
    int plannerInvocations = 0;
    int predictorInvocations = 0; //!< incremented by the VS hook
    int subtasksCompleted = 0;
    double plannerV2Ratio = 1.0;    //!< mean (V/Vnom)^2 over planner compute
    double controllerV2Ratio = 1.0; //!< mean (V/Vnom)^2 over controller compute
    double plannerEffV = 0.9;
    double controllerEffV = 0.9;
    std::uint64_t bitFlips = 0;
    std::uint64_t anomaliesCleared = 0;
};

/** Per-step extension points (voltage scaling, recorders). */
class AgentHooks
{
  public:
    virtual ~AgentHooks() = default;

    /** Called before each controller inference; may retune the context. */
    virtual void beforeController(const MineWorld&, std::uint64_t,
                                  ComputeContext&, EpisodeResult&)
    {
    }

    /** Called with the (possibly corrupted) logits and the chosen action. */
    virtual void afterLogits(const MineWorld&, std::uint64_t,
                             const std::vector<float>&, Action)
    {
    }
};

/** Episode limits. */
struct AgentConfig
{
    int worldSize = 40;
    int subtaskBudget = 240; //!< steps before re-planning (paper: 600)
    int taskCap = 2400;      //!< total steps before failure (paper: 12,000)
};

/** The planner+controller embodied agent on MineWorld. */
class EmbodiedAgent
{
  public:
    EmbodiedAgent(PlannerModel& planner, ControllerModel& controller,
                  AgentConfig cfg = {});

    /**
     * Run one episode. Resets both contexts' energy meters.
     *
     * @param plannerCtx    execution context for planner inferences
     * @param controllerCtx execution context for controller inferences
     * @param hooks         optional per-step hooks (may be nullptr)
     */
    EpisodeResult runEpisode(MineTask task, std::uint64_t seed,
                             ComputeContext& plannerCtx,
                             ComputeContext& controllerCtx,
                             AgentHooks* hooks = nullptr);

    const AgentConfig& config() const { return cfg_; }

  private:
    std::vector<Subtask> invokePlanner(int taskId, int done,
                                       ComputeContext& ctx);

    PlannerModel& planner_;
    ControllerModel& controller_;
    AgentConfig cfg_;
};

} // namespace create
