#include "agent/agent.hpp"

namespace create {

EmbodiedAgent::EmbodiedAgent(PlannerModel& planner,
                             ControllerModel& controller, AgentConfig cfg)
    : planner_(planner), controller_(controller), cfg_(cfg)
{
}

std::vector<Subtask>
EmbodiedAgent::invokePlanner(int taskId, int done, ComputeContext& ctx)
{
    const auto tokens = planner_.inferPlan(taskId, done, ctx);
    return PlanVocab::mine().decode(tokens);
}

EpisodeResult
EmbodiedAgent::runEpisode(MineTask task, std::uint64_t seed,
                          ComputeContext& plannerCtx,
                          ComputeContext& controllerCtx, AgentHooks* hooks)
{
    EpisodeResult r;
    plannerCtx.meter.reset();
    controllerCtx.meter.reset();
    plannerCtx.domain = Domain::Planner;
    controllerCtx.domain = Domain::Controller;

    MineWorld world({cfg_.worldSize, cfg_.worldSize, task, seed});
    Rng actionRng(seed ^ 0x51AB5EEDull);
    const int taskId = static_cast<int>(task);

    int done = 0;
    auto plan = invokePlanner(taskId, done, plannerCtx);
    ++r.plannerInvocations;
    std::size_t planIdx = 0;
    int steps = 0;

    while (steps < cfg_.taskCap && !world.taskComplete()) {
        if (planIdx >= plan.size()) {
            if (plan.empty()) {
                // A corrupted planner produced no subtasks: the agent idles
                // through a budget's worth of steps before re-consulting it
                // (the paper's "prolonged irrelevant actions").
                for (int i = 0;
                     i < cfg_.subtaskBudget && steps < cfg_.taskCap; ++i) {
                    world.step(Action::Noop);
                    ++steps;
                }
            }
            if (steps >= cfg_.taskCap)
                break;
            plan = invokePlanner(taskId, done, plannerCtx);
            ++r.plannerInvocations;
            planIdx = 0;
            continue;
        }

        const Subtask subtask = plan[planIdx];
        world.setActiveSubtask(subtask);
        int budget = 0;
        while (!world.subtaskComplete() && budget < cfg_.subtaskBudget &&
               steps < cfg_.taskCap && !world.taskComplete()) {
            if (hooks) {
                hooks->beforeController(world,
                                        static_cast<std::uint64_t>(steps),
                                        controllerCtx, r);
            }
            const MineObs obs = world.observe();
            const auto logits = controller_.inferLogits(
                static_cast<int>(subtask.type), obs.spatial, obs.state,
                controllerCtx);
            const auto action =
                static_cast<Action>(sampleAction(logits, actionRng));
            if (hooks) {
                hooks->afterLogits(world, static_cast<std::uint64_t>(steps),
                                   logits, action);
            }
            world.step(action);
            ++steps;
            ++budget;
        }

        if (world.subtaskComplete()) {
            ++done;
            ++r.subtasksCompleted;
            ++planIdx;
        } else if (steps < cfg_.taskCap) {
            // Budget exhausted: re-invoke the planner with progress so far
            // (Sec. 2.1 re-planning rule).
            plan = invokePlanner(taskId, done, plannerCtx);
            ++r.plannerInvocations;
            planIdx = 0;
        }
    }

    r.success = world.taskComplete();
    // Executed steps. On this path a failed episode always runs to
    // cfg_.taskCap (the loop only exits on success or cap), so this equals
    // the old `success ? steps : taskCap` accounting; stated this way all
    // platform families bill actual executed controller steps.
    r.steps = steps;

    const auto& pu = plannerCtx.meter.usage(Domain::Planner);
    const auto& cu = controllerCtx.meter.usage(Domain::Controller);
    if (pu.macs > 0.0)
        r.plannerV2Ratio = pu.v2WeightedMacs / pu.macs;
    if (cu.macs > 0.0)
        r.controllerV2Ratio = cu.v2WeightedMacs / cu.macs;
    r.plannerEffV = plannerCtx.meter.effectiveVoltage(Domain::Planner);
    r.controllerEffV =
        controllerCtx.meter.effectiveVoltage(Domain::Controller);
    r.bitFlips = pu.bitFlips + cu.bitFlips;
    r.anomaliesCleared = pu.anomaliesCleared + cu.anomaliesCleared;
    return r;
}

} // namespace create
