/**
 * @file
 * Fig. 15: voltage update interval sweep. Short intervals track workload
 * changes (high success); very long intervals react too slowly. The paper
 * picks 5 steps as the sweet spot.
 */

#include "bench_util.hpp"

using namespace create;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const auto opt = bench::setup(
        cli, "Fig. 15 voltage update interval", 10,
        "  --vs-interval N  evaluate only this LDO update interval "
        "(<= 0 disables voltage scaling)\n");
    const int reps = opt.reps;
    CreateSystem sys(false);
    sys.setEvalThreads(opt.threads);

    std::vector<int> intervals = {1, 5, 10, 20};
    if (cli.has("vs-interval"))
        intervals = {static_cast<int>(cli.integer("vs-interval", 5))};

    for (const char* taskName : {"wooden", "stone"}) {
        const MineTask task = mineTaskByName(taskName);
        Table t(std::string("Fig. 15: update interval effects (") +
                taskName + ", policy F, no AD)");
        t.header({"interval (steps)", "success", "energy (J)",
                  "effective V", "predictor runs/episode"});
        for (int interval : intervals) {
            CreateConfig cfg = CreateConfig::atVoltage(0.90, 0.90);
            cfg.injectPlanner = false;
            cfg.anomalyDetection = false;
            cfg.voltageScaling = true;
            cfg.policy = EntropyVoltagePolicy::preset('F');
            cfg.vsInterval = interval;
            const auto s = sys.evaluate(task, cfg, reps);
            // Predictor overhead is in the energy metric already (43 MOps
            // per prediction); report the invocation count explicitly.
            CreateConfig one = cfg;
            const auto r = sys.runEpisode(task, 31337, one);
            t.row({std::to_string(interval), Table::pct(s.successRate),
                   Table::num(s.avgComputeJ, 2),
                   Table::num(s.avgControllerEffV, 3),
                   std::to_string(r.predictorInvocations)});
        }
        t.print();
    }
    std::printf("\nShape check vs paper: 1- and 5-step intervals sustain "
                "success; 5 steps costs slightly less (fewer predictor "
                "invocations); 10/20 steps track the workload too slowly.\n");
    return 0;
}
