/**
 * @file
 * Fig. 5: the resilience characterization (the paper's first contribution).
 *  (a)-(b) planner-only injection: success plunges orders of magnitude
 *          before the controller's knee;
 *  (c)-(d) controller-only injection;
 *  (e)-(f) planner components: pre-norm O/Down vs K;
 *  (g)-(h) controller components: minor variation;
 *  (i)-(l) activation distributions and normalization skew under a fault.
 */

#include <cmath>

#include "bench_util.hpp"

using namespace create;

namespace {

void
sweep(CreateSystem& sys, const char* title, bool injectPlanner,
      const std::vector<double>& bers, const std::string& filter, int reps)
{
    Table t(title);
    t.header({"BER", "wooden success", "wooden steps", "stone success",
              "stone steps"});
    for (double ber : bers) {
        CreateConfig cfg = CreateConfig::uniform(ber);
        cfg.injectPlanner = injectPlanner;
        cfg.injectController = !injectPlanner;
        cfg.componentFilter = filter;
        const auto sw = sys.evaluate(MineTask::Wooden, cfg, reps);
        const auto ss = sys.evaluate(MineTask::Stone, cfg, reps);
        t.row({create::bench::berStr(ber), Table::pct(sw.successRate),
               Table::num(sw.avgStepsSuccess, 0), Table::pct(ss.successRate),
               Table::num(ss.avgStepsSuccess, 0)});
    }
    t.print();
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const auto opt =
        bench::setup(cli, "Fig. 5 resilience characterization", 10);
    const int reps = opt.reps;
    CreateSystem sys(false);
    sys.setEvalThreads(opt.threads);

    sweep(sys, "Fig. 5(a)-(b): planner-only injection", true,
          {1e-6, 1e-5, 1e-4, 3e-4, 1e-3}, "", reps);
    sweep(sys, "Fig. 5(c)-(d): controller-only injection", false,
          {1e-5, 1e-4, 1e-3, 3e-3, 1e-2}, "", reps);
    sweep(sys, "Fig. 5(e)-(f): planner K component only", true,
          {1e-4, 3e-4, 1e-3}, ".attn.k", reps);
    sweep(sys, "Fig. 5(e)-(f): planner O component only (pre-norm)", true,
          {1e-4, 3e-4, 1e-3}, ".attn.o", reps);
    sweep(sys, "Fig. 5(g)-(h): controller K component only", false,
          {1e-3, 3e-3, 1e-2}, ".attn.k", reps);
    sweep(sys, "Fig. 5(g)-(h): controller O component only", false,
          {1e-3, 3e-3, 1e-2}, ".attn.o", reps);

    // (i)-(l): activation distributions of the pre-norm layers and the
    // skew a single large fault induces in normalization statistics.
    Table il("Fig. 5(i)-(l): pre-norm activation stats and fault skew");
    il.header({"model", "activation absmax", "clean sigma",
               "sigma after 1 large fault", "skew factor"});
    {
        // Planner: one residual-stream row entering RMSNorm.
        auto& planner = sys.planner(false);
        ComputeContext ctx(7);
        ctx.calibrating = true;
        planner.inferLogits(0, 0, ctx); // calibrates observers
        const float oMax =
            planner.block(0).attn().o().quantState().outObs.absMax();
        // Emulate a corrupted element at the AD bound vs a typical vector.
        const int d = planner.config().dim;
        Rng rng(7);
        Tensor act({d});
        for (int i = 0; i < d; ++i)
            act[i] = static_cast<float>(rng.normal());
        for (int i = 0; i < planner.config().outlierChannels; ++i)
            act[(7 + i * 13) % d] *= planner.config().outlierScale;
        const float sigmaClean = act.stddev();
        Tensor corrupted = act;
        corrupted[1] = oMax; // a surviving fault as large as the range
        const float sigmaFault = corrupted.stddev();
        il.row({"planner (outlier channels)", Table::num(oMax, 1),
                Table::num(sigmaClean, 2), Table::num(sigmaFault, 2),
                Table::num(sigmaFault / sigmaClean, 2)});

        auto& controller = sys.controller();
        const float cMax =
            controller.block(0).attn().o().quantState().outObs.absMax();
        Tensor cact({d});
        for (int i = 0; i < d; ++i)
            cact[i] = static_cast<float>(rng.normal());
        const float cSigma = cact.stddev();
        Tensor cc = cact;
        cc[1] = cMax;
        il.row({"controller (uniform)", Table::num(cMax, 1),
                Table::num(cSigma, 2), Table::num(cc.stddev(), 2),
                Table::num(cc.stddev() / cSigma, 2)});
    }
    il.print();
    std::printf("\nShape check vs paper: the controller tolerates ~1-2 "
                "orders higher BER than the planner; pre-norm components "
                "(O) are the planner's weak point; a single surviving "
                "fault skews the planner's normalization statistics far "
                "more than the controller's.\n");
    return 0;
}
