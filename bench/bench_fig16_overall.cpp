/**
 * @file
 * Fig. 16: the headline evaluation across eight Minecraft tasks.
 *  (a) reliability at a fixed aggressive 0.75 V operating point;
 *  (b) energy savings at each configuration's minimal reliable voltage
 *      (the paper's 40.6% average computational energy saving).
 */

#include "bench_util.hpp"

using namespace create;

namespace {

const char* kTasks[] = {"wooden", "stone", "charcoal", "chicken",
                        "coal",   "iron",  "wool",     "seed"};

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const auto opt =
        bench::setup(cli, "Fig. 16 overall evaluation (8 tasks)", 6);
    const int reps = opt.reps;
    CreateSystem sys(false);
    sys.setEvalThreads(opt.threads);

    // (a) Reliability at 0.75 V.
    {
        Table t("Fig. 16(a): success rate / energy at VDD = 0.75 V");
        t.header({"task", "no protection", "AD", "AD+WR", "AD+WR+VS",
                  "AD+WR+VS energy (J)", "error-free energy (J)"});
        for (const char* name : kTasks) {
            const MineTask task = mineTaskByName(name);
            CreateConfig none = CreateConfig::atVoltage(0.75, 0.75);
            CreateConfig ad = none;
            ad.anomalyDetection = true;
            CreateConfig adwr = ad;
            adwr.weightRotation = true;
            CreateConfig full = adwr;
            full.voltageScaling = true;
            full.controllerVoltage = 0.90;
            full.policy = EntropyVoltagePolicy::preset('C');
            const auto s0 = sys.evaluate(task, none, reps);
            const auto s1 = sys.evaluate(task, ad, reps);
            const auto s2 = sys.evaluate(task, adwr, reps);
            const auto s3 = sys.evaluate(task, full, reps);
            const auto clean =
                sys.evaluate(task, CreateConfig::clean(), reps);
            t.row({name, Table::pct(s0.successRate),
                   Table::pct(s1.successRate), Table::pct(s2.successRate),
                   Table::pct(s3.successRate),
                   Table::num(s3.avgComputeJ, 2),
                   Table::num(clean.avgComputeJ, 2)});
        }
        t.print();
    }

    // (b) Energy at the minimal voltage sustaining task quality. Like the
    // paper, the operating point is searched per task: the lowest planner
    // voltage (with AD+WR, controller on AD+VS) whose success rate stays
    // within 10 points of the error-free baseline.
    {
        Table t("Fig. 16(b): computational energy at minimal reliable "
                "voltage (avg J/task)");
        t.header({"task", "nominal J", "AD J", "CREATE minimal V",
                  "CREATE success", "CREATE J", "CREATE savings"});
        double totalNominal = 0.0, totalCreate = 0.0;
        for (const char* name : kTasks) {
            const MineTask task = mineTaskByName(name);
            const auto nominal =
                sys.evaluate(task, CreateConfig::clean(), reps);
            CreateConfig ad = CreateConfig::atVoltage(0.80, 0.80);
            ad.anomalyDetection = true;
            const auto sAd = sys.evaluate(task, ad, reps);
            // Per-task operating-point search for the full CREATE stack:
            // among quality-preserving voltages pick the lowest energy
            // (a too-aggressive point can pass on success yet waste steps).
            TaskStats best{};
            double bestV = 0.90;
            bool found = false;
            for (double v : {0.68, 0.72, 0.75, 0.78}) {
                CreateConfig full = CreateConfig::fullCreate(
                    v, EntropyVoltagePolicy::preset('E'));
                const auto s = sys.evaluate(task, full, reps);
                if (s.successRate < nominal.successRate - 0.10)
                    continue;
                if (!found || s.avgComputeJ < best.avgComputeJ) {
                    best = s;
                    bestV = v;
                    found = true;
                }
            }
            if (!found) {
                CreateConfig full = CreateConfig::fullCreate(
                    0.80, EntropyVoltagePolicy::preset('C'));
                best = sys.evaluate(task, full, reps);
                bestV = 0.80;
            }
            const double savings =
                1.0 - best.avgComputeJ / nominal.avgComputeJ;
            totalNominal += nominal.avgComputeJ;
            totalCreate += best.avgComputeJ;
            t.row({name, Table::num(nominal.avgComputeJ, 2),
                   Table::num(sAd.avgComputeJ, 2), Table::num(bestV, 2),
                   Table::pct(best.successRate),
                   Table::num(best.avgComputeJ, 2), Table::pct(savings)});
        }
        t.row({"AVERAGE", "", "", "", "", Table::num(totalCreate / 8.0, 2),
               Table::pct(1.0 - totalCreate / totalNominal)});
        t.print();
    }
    std::printf("\nShape check vs paper: unprotected 0.75 V operation "
                "collapses; AD recovers most tasks; AD+WR approaches the "
                "error-free baseline; CREATE saves ~40%% computational "
                "energy on average (paper: 40.6%%).\n");
    return 0;
}
