/**
 * @file
 * Fig. 16: the headline evaluation across eight Minecraft tasks.
 *  (a) reliability at a fixed aggressive 0.75 V operating point;
 *  (b) energy savings at each configuration's minimal reliable voltage
 *      (the paper's 40.6% average computational energy saving).
 *
 * Declared as one SweepRunner campaign: the error-free baseline cell per
 * task is shared between sections (a) and (b) through the engine's
 * memoization, and (b)'s per-task operating-point search candidates are
 * all independent cells, so the whole figure shards across --threads
 * workers (and --shard i/N processes) and checkpoints with --out/--resume
 * at episode granularity -- a kill mid-cell resumes from the surviving
 * episode prefix.
 */

#include "bench_util.hpp"

using namespace create;

namespace {

const char* kTasks[] = {"wooden", "stone", "charcoal", "chicken",
                        "coal",   "iron",  "wool",     "seed"};

constexpr double kSearchVoltages[] = {0.68, 0.72, 0.75, 0.78};

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const auto opt =
        bench::setupSweep(cli, "Fig. 16 overall evaluation (8 tasks)", 6);
    if (opt.shardCount > 1) {
        // Phase 2 (the per-task fallback operating point) is steered by
        // phase 1's full results; no shard sees them all, so a sharded
        // run would mis-declare the fallback cells and leave the shared
        // store permanently incomplete. Refuse rather than corrupt.
        std::fprintf(stderr,
                     "error: --shard is not supported by fig16 (its "
                     "fallback phase is steered by full phase-1 results); "
                     "shard the other drivers or run fig16 unsharded\n");
        return 2;
    }
    const int reps = opt.reps;

    SweepRunner sweep(bench::sweepOptions(opt));

    // --- declare the sweep matrix ---------------------------------------
    struct TaskCells
    {
        const char* name;
        // (a) protection ladder at 0.75 V + clean baseline.
        std::size_t none, ad, adwr, full, clean;
        // (b) AD reference at 0.80 V, the voltage search, the fallback
        // (declared in a second phase only where the search fails).
        std::size_t ad80;
        std::vector<std::size_t> search;
        std::size_t fallback = SIZE_MAX;
    };
    std::vector<TaskCells> taskCells;
    for (const char* name : kTasks) {
        const int task = static_cast<int>(mineTaskByName(name));
        auto cell = [&](const CreateConfig& cfg, const std::string& label) {
            return sweep.add({"jarvis-1", task, cfg, reps,
                              EmbodiedSystem::kDefaultSeed0,
                              std::string(name) + "/" + label});
        };
        TaskCells tc;
        tc.name = name;

        CreateConfig none = CreateConfig::atVoltage(0.75, 0.75);
        CreateConfig ad = none;
        ad.anomalyDetection = true;
        CreateConfig adwr = ad;
        adwr.weightRotation = true;
        CreateConfig full = adwr;
        full.voltageScaling = true;
        full.controllerVoltage = 0.90;
        full.policy = EntropyVoltagePolicy::preset('C');
        tc.none = cell(none, "none@0.75");
        tc.ad = cell(ad, "AD@0.75");
        tc.adwr = cell(adwr, "AD+WR@0.75");
        tc.full = cell(full, "AD+WR+VS@0.75");
        tc.clean = cell(CreateConfig::clean(), "clean");

        CreateConfig ad80 = CreateConfig::atVoltage(0.80, 0.80);
        ad80.anomalyDetection = true;
        tc.ad80 = cell(ad80, "AD@0.80");
        for (double v : kSearchVoltages) {
            CreateConfig fullV = CreateConfig::fullCreate(
                v, EntropyVoltagePolicy::preset('E'));
            tc.search.push_back(cell(fullV, "CREATE@" + Table::num(v, 2)));
        }
        taskCells.push_back(std::move(tc));
    }

    sweep.run();

    // Like the paper, (b)'s operating point is searched per task: the
    // lowest planner voltage (with AD+WR, controller on AD+VS) whose
    // success rate stays within 10 points of the error-free baseline,
    // breaking ties on energy (a too-aggressive point can pass on
    // success yet waste steps).
    struct SearchResult
    {
        bool found = false;
        double v = 0.90;
        TaskStats stats{};
    };
    auto searchBest = [&](const TaskCells& tc) {
        SearchResult r;
        const auto& nominal = sweep.stats(tc.clean);
        for (std::size_t i = 0; i < tc.search.size(); ++i) {
            const auto& s = sweep.stats(tc.search[i]);
            if (s.successRate < nominal.successRate - 0.10)
                continue;
            if (!r.found || s.avgComputeJ < r.stats.avgComputeJ) {
                r.stats = s;
                r.v = kSearchVoltages[i];
                r.found = true;
            }
        }
        return r;
    };

    // Phase 2: a conservative fallback operating point, declared only for
    // the tasks whose voltage search failed.
    for (auto& tc : taskCells) {
        if (searchBest(tc).found)
            continue;
        CreateConfig fallback = CreateConfig::fullCreate(
            0.80, EntropyVoltagePolicy::preset('C'));
        tc.fallback = sweep.add({"jarvis-1",
                                 static_cast<int>(mineTaskByName(tc.name)),
                                 fallback, reps, EmbodiedSystem::kDefaultSeed0,
                                 std::string(tc.name) +
                                     "/CREATE-fallback@0.80"});
    }
    sweep.run();

    // --- render ----------------------------------------------------------

    // (a) Reliability at 0.75 V.
    {
        Table t("Fig. 16(a): success rate / energy at VDD = 0.75 V");
        t.header({"task", "no protection", "AD", "AD+WR", "AD+WR+VS",
                  "AD+WR+VS energy (J)", "error-free energy (J)"});
        for (const auto& tc : taskCells) {
            const auto& s3 = sweep.stats(tc.full);
            const auto& clean = sweep.stats(tc.clean);
            t.row({tc.name, Table::pct(sweep.stats(tc.none).successRate),
                   Table::pct(sweep.stats(tc.ad).successRate),
                   Table::pct(sweep.stats(tc.adwr).successRate),
                   Table::pct(s3.successRate),
                   Table::num(s3.avgComputeJ, 2),
                   Table::num(clean.avgComputeJ, 2)});
        }
        t.print();
    }

    // (b) Energy at the minimal voltage sustaining task quality.
    {
        Table t("Fig. 16(b): computational energy at minimal reliable "
                "voltage (avg J/task)");
        t.header({"task", "nominal J", "AD J", "CREATE minimal V",
                  "CREATE success", "CREATE J", "CREATE savings"});
        double totalNominal = 0.0, totalCreate = 0.0;
        for (const auto& tc : taskCells) {
            const auto& nominal = sweep.stats(tc.clean);
            const auto& sAd = sweep.stats(tc.ad80);
            SearchResult best = searchBest(tc);
            if (!best.found) {
                best.stats = sweep.stats(tc.fallback);
                best.v = 0.80;
            }
            const double savings =
                1.0 - best.stats.avgComputeJ / nominal.avgComputeJ;
            totalNominal += nominal.avgComputeJ;
            totalCreate += best.stats.avgComputeJ;
            t.row({tc.name, Table::num(nominal.avgComputeJ, 2),
                   Table::num(sAd.avgComputeJ, 2), Table::num(best.v, 2),
                   Table::pct(best.stats.successRate),
                   Table::num(best.stats.avgComputeJ, 2),
                   Table::pct(savings)});
        }
        t.row({"AVERAGE", "", "", "", "", Table::num(totalCreate / 8.0, 2),
               Table::pct(1.0 - totalCreate / totalNominal)});
        t.print();
    }
    std::printf("\nShape check vs paper: unprotected 0.75 V operation "
                "collapses; AD recovers most tasks; AD+WR approaches the "
                "error-free baseline; CREATE saves ~40%% computational "
                "energy on average (paper: 40.6%%).\n");
    return 0;
}
