/**
 * @file
 * Fig. 6: resilience diversity across subtasks. Deterministic action
 * chains (log/stone/iron mining) collapse abruptly once errors disrupt
 * the consecutive-hit sequences, while stochastic subtasks (chicken
 * hunting, wool shearing) degrade gracefully.
 */

#include "bench_util.hpp"
#include "models/model_zoo.hpp"

using namespace create;

namespace {

struct SubtaskCase
{
    const char* name;
    MineTask biome;
    Subtask subtask;
    std::vector<std::pair<Item, int>> grants; //!< prerequisites
};

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const int reps =
        bench::setupSerial(cli, "Fig. 6 subtask resilience diversity", 12);
    const int budget = 300;

    auto controller = ModelZoo::mineController(false);

    const std::vector<SubtaskCase> cases = {
        {"log", MineTask::Log, {SubtaskType::MineLog, 6}, {}},
        {"stone", MineTask::Stone, {SubtaskType::MineStone, 4},
         {{Item::WoodenPickaxe, 1}}},
        {"iron", MineTask::Iron, {SubtaskType::MineIron, 2},
         {{Item::StonePickaxe, 1}}},
        {"coal", MineTask::Coal, {SubtaskType::MineCoal, 2},
         {{Item::WoodenPickaxe, 1}}},
        {"wool", MineTask::Wool, {SubtaskType::ShearWool, 4}, {}},
        {"chicken", MineTask::Chicken, {SubtaskType::HuntChicken, 2}, {}},
    };

    Table t("Fig. 6: per-subtask success rate vs BER (controller-only)");
    std::vector<std::string> header = {"BER"};
    for (const auto& c : cases)
        header.push_back(c.name);
    t.header(header);

    for (double ber : {1e-4, 1e-3, 2e-3, 3e-3, 6e-3}) {
        std::vector<std::string> row = {bench::berStr(ber)};
        for (const auto& c : cases) {
            int successes = 0;
            for (int rep = 0; rep < reps; ++rep) {
                MineWorld w({40, 40, c.biome,
                             2025 + static_cast<std::uint64_t>(rep * 13)});
                for (const auto& [item, count] : c.grants)
                    w.grantItem(item, count);
                w.setActiveSubtask(c.subtask);
                ComputeContext ctx(static_cast<std::uint64_t>(rep) * 7 + 1);
                ctx.setUniformBer(ber);
                ctx.domain = Domain::Controller;
                Rng rng(static_cast<std::uint64_t>(rep) + 5);
                for (int s = 0; s < budget && !w.subtaskComplete(); ++s) {
                    const MineObs obs = w.observe();
                    const auto logits = controller->inferLogits(
                        static_cast<int>(c.subtask.type), obs.spatial,
                        obs.state, ctx);
                    w.step(static_cast<Action>(sampleAction(logits, rng)));
                }
                successes += w.subtaskComplete() ? 1 : 0;
            }
            row.push_back(Table::pct(static_cast<double>(successes) / reps));
        }
        t.row(row);
    }
    t.print();
    std::printf("\nShape check vs paper: sequential mining subtasks (log/"
                "stone/iron) fall off abruptly; stochastic mob subtasks "
                "(wool/chicken) degrade gradually.\n");
    return 0;
}
