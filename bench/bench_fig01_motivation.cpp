/**
 * @file
 * Fig. 1(b)-(d): the motivation study. (b) voltage -> BER from the timing
 * model; (c) task quality vs BER (both models injected, uniform model);
 * (d) energy per task vs operating voltage -- lowering voltage past the
 * resilience knee *increases* energy per task because failures burn steps.
 */

#include "bench_util.hpp"

using namespace create;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const auto opt =
        bench::setup(cli, "Fig. 1(b)-(d) motivation", 12);
    const int reps = opt.reps;
    CreateSystem sys(false);
    sys.setEvalThreads(opt.threads);

    Table b("Fig. 1(b): operating voltage -> computation bit error rate");
    b.header({"voltage (V)", "BER"});
    for (double v = 0.90; v >= 0.595; v -= 0.03)
        b.row({Table::num(v, 2),
               bench::berStr(TimingErrorModel::berAtVoltage(v))});
    b.print();

    Table c("Fig. 1(c): task quality vs BER (stone, uniform injection)");
    c.header({"BER", "success rate", "avg steps (success)"});
    for (double ber : {1e-6, 1e-5, 1e-4, 3e-4, 1e-3, 3e-3}) {
        const auto s =
            sys.evaluate(MineTask::Stone, CreateConfig::uniform(ber), reps);
        c.row({bench::berStr(ber), Table::pct(s.successRate),
               Table::num(s.avgStepsSuccess, 0)});
    }
    c.print();

    Table d("Fig. 1(d): energy per task vs operating voltage (stone)");
    d.header({"voltage (V)", "success rate", "avg steps", "energy (J)"});
    for (double v : {0.90, 0.80, 0.75, 0.72}) {
        const auto s = sys.evaluate(MineTask::Stone,
                                    CreateConfig::atVoltage(v, v), reps);
        d.row({Table::num(v, 2), Table::pct(s.successRate),
               Table::num(s.avgStepsSuccess, 0),
               Table::num(s.avgComputeJ, 2)});
    }
    d.print();
    std::printf("\nShape check vs paper: success degrades and steps/energy "
                "inflate as voltage (BER) leaves the resilient region.\n");
    return 0;
}
