/**
 * @file
 * Table 2 + Fig. 12(d)/(e): the digital LDO. Prints the spec sheet from
 * the behavioural model and simulated step-response waveform summaries.
 */

#include "bench_util.hpp"
#include "hw/ldo.hpp"

using namespace create;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    bench::setupAnalytic(cli, "Table 2 LDO specifications");
    DigitalLdo ldo;
    const LdoSpec& s = ldo.spec();

    Table t("Table 2: performance specifications of the LDO");
    t.header({"item", "value", "paper"});
    t.row({"technology", Table::num(s.technologyNm, 0) + " nm", "22 nm"});
    t.row({"Vout range",
           Table::num(s.vMin, 1) + "-" + Table::num(s.vMax, 1) + " V",
           "0.6-0.9 V"});
    t.row({"Vstep", Table::num(s.vStep * 1e3, 0) + " mV", "10 mV"});
    t.row({"t_resp", Table::num(s.slewNsPer50mV, 0) + " ns / 50 mV",
           "90 ns / 50 mV"});
    t.row({"peak current efficiency", Table::pct(s.peakCurrentEff, 1),
           "99.8%"});
    t.row({"I_load,max", Table::num(s.iLoadMaxA, 1) + " A", "15.2 A"});
    t.row({"area", Table::num(s.areaMm2, 2) + " mm^2", "0.43 mm^2"});
    t.row({"current density",
           Table::num(s.currentDensityApermm2, 0) + " A/mm^2", "35 A/mm^2"});
    t.print();

    Table w("Fig. 12(d)-(e): step-response latencies (simulated)");
    w.header({"transition", "latency (ns)"});
    struct Step
    {
        double from, to;
    };
    for (const auto& step : {Step{0.90, 0.85}, Step{0.85, 0.75},
                             Step{0.75, 0.90}, Step{0.90, 0.60}}) {
        DigitalLdo l;
        l.set(step.from);
        const double ns = l.set(step.to);
        w.row({Table::num(step.from, 2) + " -> " + Table::num(step.to, 2) +
                   " V",
               Table::num(ns, 0)});
    }
    w.print();
    std::printf("\nAll transitions complete within the 540 ns worst case "
                "(Table 3), orders of magnitude under the controller's "
                "942 us inference latency.\n");
    return 0;
}
