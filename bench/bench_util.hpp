#pragma once

/**
 * @file
 * Shared scaffolding for the experiment benches. Every bench binary
 * regenerates one table/figure of the paper; run with no arguments for
 * the fast defaults, or raise --reps toward the paper's >=100 episode
 * repetitions and --threads to fan the work out (default: all hardware
 * threads). The sweep-based drivers (fig13/16/17/20/21, tab05) declare
 * their matrix on the SweepRunner campaign engine and additionally take
 * --out (resumable episode-ledger store), --resume, --shard i/N
 * (partition one campaign across N processes sharing a store),
 * --lease S (elastic lease-stealing workers sharing a store),
 * --connect host:port (socket workers of a create-coordinator campaign),
 * --progress, and --flush-every. A note on axes: see
 * EXPERIMENTS.md for why the BER axis of the small stand-in models sits a
 * few orders above the paper's (flips per inference is the invariant, not
 * BER).
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/serialize.hpp"
#include "common/table.hpp"
#include "core/anomaly.hpp"
#include "core/create_system.hpp"
#include "core/parallel_eval.hpp"
#include "core/sweep.hpp"
#include "hw/kernel_dispatch.hpp"

namespace create::bench {

/** Format a BER like "1e-04". */
inline std::string
berStr(double ber)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0e", ber);
    return buf;
}

/** Worker count for the parallel evaluator (--threads, default: all). */
inline int
evalThreads(const Cli& cli)
{
    const auto n = static_cast<int>(
        cli.integer("threads", ParallelEvaluator::defaultThreads()));
    return n < 1 ? 1 : n;
}

/** Standard preamble: announce the artifact, episode count, and threads. */
inline void
preamble(const char* artifact, int reps, int threads = 1)
{
    std::printf("Reproducing %s  (%d episodes/config; paper uses >=100, "
                "raise with --reps; %d eval thread%s, set with --threads)\n",
                artifact, reps, threads, threads == 1 ? "" : "s");
    // Which SIMD tier the quantized hot path selected on this host
    // (override with CREATE_FORCE_ISA; see src/hw/kernel_dispatch.hpp).
    std::printf("[simd] %s\n", simd::report().c_str());
}

/** Parsed standard options of an evaluate-style bench. */
struct BenchOptions
{
    int reps = 0;
    int threads = 1;
    std::string jsonPath;  //!< --json <path>: machine-readable records
    std::string storePath; //!< --out <path>: SweepRunner episode store
    bool resume = false;   //!< --resume: reuse ledgers already in the store
    bool progress = false; //!< --progress: stderr status line per flush
    bool batched = true;   //!< --no-batch: disable cross-episode fusion
    int flushEvery = 16;   //!< --flush-every N: episodes per store flush
    int shardIndex = 0;    //!< --shard i/N: this process's partition
    int shardCount = 1;
    double leaseSeconds = 0.0; //!< --lease S: elastic lease-stealing mode
    /** --store-format json|binlog: on-disk format when --out creates the
     *  store (an existing store keeps its detected format). */
    StoreFormat storeFormat = StoreFormat::Json;
    /** --connect host:port: run as a socket worker of a
     *  create-coordinator campaign (no local store; mutually exclusive
     *  with --out/--resume/--shard/--lease). */
    std::string connect;
};

/**
 * SweepRunner options of a sweep-based driver
 * (--threads/--out/--resume/--shard/--progress/--flush-every).
 */
inline SweepRunner::Options
sweepOptions(const BenchOptions& o)
{
    SweepRunner::Options so;
    so.threads = o.threads;
    so.batched = o.batched;
    so.storePath = o.storePath;
    so.resume = o.resume;
    so.progress = o.progress;
    so.flushEvery = o.flushEvery;
    so.shardIndex = o.shardIndex;
    so.shardCount = o.shardCount;
    so.leaseSeconds = o.leaseSeconds;
    so.storeFormat = o.storeFormat;
    so.connect = o.connect;
    return so;
}

/**
 * Machine-readable result/latency records behind the shared --json flag.
 *
 * Benches add one flat record of numeric fields per measured point and
 * call write() at the end; the file is a JSON array (the JsonRecord
 * format of common/serialize, shared with the SweepRunner result store)
 * so perf trajectories can be tracked across commits (see
 * BENCH_micro.json at the repo root for the micro-kernel equivalent
 * emitted by bench_micro --json). Everything is a no-op when the flag is
 * absent.
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string path) : path_(std::move(path)) {}

    bool enabled() const { return !path_.empty(); }

    void add(const std::string& name,
             std::vector<std::pair<std::string, double>> fields)
    {
        if (enabled())
            records_.push_back({name, {}, std::move(fields)});
    }

    /** Write the collected records; prints where they went. */
    void write() const
    {
        if (!enabled())
            return;
        if (!writeJsonRecords(path_, records_)) {
            std::fprintf(stderr, "--json: cannot write %s\n", path_.c_str());
            return;
        }
        std::printf("\nWrote %zu JSON records to %s\n", records_.size(),
                    path_.c_str());
    }

  private:
    std::string path_;
    std::vector<JsonRecord> records_;
};

namespace detail {

inline BenchOptions
setupImpl(const Cli& cli, const char* artifact, int defaultReps,
          bool threaded, bool sweep, const char* extraHelp)
{
    if (cli.flag("help")) {
        std::printf("%s\n\nOptions:\n"
                    "  --reps N     episodes per configuration (default %d; "
                    "the paper uses >=100)\n",
                    artifact, defaultReps);
        if (threaded)
            std::printf("  --threads N  parallel evaluation workers "
                        "(default: all hardware threads, here %d)\n",
                        ParallelEvaluator::defaultThreads());
        std::printf("  --json PATH  also write machine-readable result "
                    "records to PATH\n");
        if (sweep)
            std::printf(
                "  --out PATH     resumable episode-ledger store (JSON; "
                "episodes flush in batches)\n"
                "  --resume       reuse episodes already in the --out "
                "store (prefix slices included)\n"
                "  --shard I/N    run partition I of N over the pending "
                "ledgers (share one --out)\n"
                "  --lease S      elastic mode: claim ledgers via leases "
                "in the --out store, stealing work\n"
                "                 from workers silent longer than S "
                "seconds (replaces the --shard partition)\n"
                "  --connect H:P  run as a socket worker of a "
                "create-coordinator campaign at host H port P\n"
                "                 (the coordinator owns the store; "
                "replaces --out/--resume/--shard/--lease)\n"
                "  --progress     one stderr status line per flush "
                "(episodes/s, success, ETA, GEMM fusion)\n"
                "  --flush-every N  episodes per store flush (default "
                "16)\n"
                "  --store-format F  on-disk format when --out creates "
                "the store: json (default,\n"
                "                 interchange) or binlog (per-writer "
                "append logs, O(batch) flushes);\n"
                "                 an existing store keeps its detected "
                "format\n"
                "  --no-batch     disable cross-episode GEMM fusion "
                "(bit-identical; for A/B timing)\n");
        std::printf("%s", extraHelp ? extraHelp : "");
        std::exit(0);
    }
    BenchOptions o;
    o.reps = static_cast<int>(cli.integer("reps", defaultReps));
    if (o.reps < 1)
        o.reps = 1;
    o.threads = threaded ? evalThreads(cli) : 1;
    o.jsonPath = cli.str("json", "");
    if (sweep) {
        o.storePath = cli.str("out", "");
        o.resume = cli.flag("resume");
        o.progress = cli.flag("progress");
        o.batched = !cli.flag("no-batch");
        o.flushEvery = static_cast<int>(cli.integer("flush-every", 16));
        const std::string shard = cli.str("shard", "");
        if (!shard.empty()) {
            int i = -1, n = 0;
            char tail = '\0';
            if (std::sscanf(shard.c_str(), "%d/%d%c", &i, &n, &tail) != 2 ||
                i < 0 || n < 1 || i >= n) {
                std::fprintf(stderr,
                             "error: --shard: expected i/N with 0 <= i < N, "
                             "got '%s'\n",
                             shard.c_str());
                std::exit(2);
            }
            o.shardIndex = i;
            o.shardCount = n;
        }
        const std::string fmt = cli.str("store-format", "");
        if (!fmt.empty() && !parseStoreFormat(fmt, o.storeFormat)) {
            std::fprintf(stderr,
                         "error: --store-format: expected json or binlog, "
                         "got '%s'\n",
                         fmt.c_str());
            std::exit(2);
        }
        o.leaseSeconds = cli.real("lease", 0.0);
        if (o.leaseSeconds < 0.0)
            o.leaseSeconds = 0.0;
        if (o.leaseSeconds > 0.0 && o.storePath.empty()) {
            std::fprintf(stderr,
                         "error: --lease needs --out (the lease records "
                         "live in the shared result store)\n");
            std::exit(2);
        }
        o.connect = cli.str("connect", "");
        if (!o.connect.empty() &&
            (!o.storePath.empty() || o.resume || o.shardCount > 1 ||
             o.leaseSeconds > 0.0)) {
            std::fprintf(stderr,
                         "error: --connect replaces "
                         "--out/--resume/--shard/--lease (the "
                         "coordinator owns all store state)\n");
            std::exit(2);
        }
    }
    preamble(artifact, o.reps, o.threads);
    return o;
}

} // namespace detail

/**
 * Shared flag handling for the evaluate-style benches: `--help` prints the
 * usage (with this bench's actual defaults) and exits; otherwise `--reps`
 * and `--threads` are parsed and the standard preamble is printed.
 */
inline BenchOptions
setup(const Cli& cli, const char* artifact, int defaultReps,
      const char* extraHelp = nullptr)
{
    return detail::setupImpl(cli, artifact, defaultReps, /*threaded=*/true,
                             /*sweep=*/false, extraHelp);
}

/** setup() for the SweepRunner drivers: adds --out / --resume. */
inline BenchOptions
setupSweep(const Cli& cli, const char* artifact, int defaultReps,
           const char* extraHelp = nullptr)
{
    return detail::setupImpl(cli, artifact, defaultReps, /*threaded=*/true,
                             /*sweep=*/true, extraHelp);
}

/**
 * Flag handling for the analytic (no-episode) benches: `--help` and the
 * standard preamble. These reports are deterministic analytics with no
 * repetition/threading knobs.
 */
inline void
setupAnalytic(const Cli& cli, const char* artifact)
{
    if (cli.flag("help")) {
        std::printf("%s\n\nOptions:\n"
                    "  --help       this message (deterministic analytic "
                    "report; no other flags)\n",
                    artifact);
        std::exit(0);
    }
    preamble(artifact, 0);
}

/** setup() for the serial benches (hand-rolled loops; no --threads). */
inline int
setupSerial(const Cli& cli, const char* artifact, int defaultReps,
            const char* extraHelp = nullptr)
{
    return detail::setupImpl(cli, artifact, defaultReps, /*threaded=*/false,
                             /*sweep=*/false, extraHelp)
        .reps;
}

} // namespace create::bench
