#pragma once

/**
 * @file
 * Shared scaffolding for the experiment benches. Every bench binary
 * regenerates one table/figure of the paper; run with no arguments for
 * the fast defaults, or raise --reps toward the paper's >=100 episode
 * repetitions. A note on axes: see EXPERIMENTS.md for why the BER axis of
 * the small stand-in models sits a few orders above the paper's (flips
 * per inference is the invariant, not BER).
 */

#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/anomaly.hpp"
#include "core/create_system.hpp"

namespace create::bench {

/** Format a BER like "1e-04". */
inline std::string
berStr(double ber)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0e", ber);
    return buf;
}

/** Standard preamble: announce the artifact and the episode count. */
inline void
preamble(const char* artifact, int reps)
{
    std::printf("Reproducing %s  (%d episodes/config; paper uses >=100, "
                "raise with --reps)\n",
                artifact, reps);
}

} // namespace create::bench
