#pragma once

/**
 * @file
 * Shared scaffolding for the experiment benches. Every bench binary
 * regenerates one table/figure of the paper; run with no arguments for
 * the fast defaults, or raise --reps toward the paper's >=100 episode
 * repetitions and --threads to fan repetitions out over the parallel
 * evaluation engine (default: all hardware threads). A note on axes: see
 * EXPERIMENTS.md for why the BER axis of the small stand-in models sits a
 * few orders above the paper's (flips per inference is the invariant, not
 * BER).
 */

#include <cstdio>
#include <cstdlib>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/anomaly.hpp"
#include "core/create_system.hpp"
#include "core/parallel_eval.hpp"

namespace create::bench {

/** Format a BER like "1e-04". */
inline std::string
berStr(double ber)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0e", ber);
    return buf;
}

/** Worker count for the parallel evaluator (--threads, default: all). */
inline int
evalThreads(const Cli& cli)
{
    const auto n = static_cast<int>(
        cli.integer("threads", ParallelEvaluator::defaultThreads()));
    return n < 1 ? 1 : n;
}

/** Standard preamble: announce the artifact, episode count, and threads. */
inline void
preamble(const char* artifact, int reps, int threads = 1)
{
    std::printf("Reproducing %s  (%d episodes/config; paper uses >=100, "
                "raise with --reps; %d eval thread%s, set with --threads)\n",
                artifact, reps, threads, threads == 1 ? "" : "s");
}

/** Parsed standard options of an evaluate-style bench. */
struct BenchOptions
{
    int reps = 0;
    int threads = 1;
};

namespace detail {

inline BenchOptions
setupImpl(const Cli& cli, const char* artifact, int defaultReps,
          bool threaded, const char* extraHelp)
{
    if (cli.flag("help")) {
        std::printf("%s\n\nOptions:\n"
                    "  --reps N     episodes per configuration (default %d; "
                    "the paper uses >=100)\n",
                    artifact, defaultReps);
        if (threaded)
            std::printf("  --threads N  parallel evaluation workers "
                        "(default: all hardware threads, here %d)\n",
                        ParallelEvaluator::defaultThreads());
        std::printf("%s", extraHelp ? extraHelp : "");
        std::exit(0);
    }
    BenchOptions o;
    o.reps = static_cast<int>(cli.integer("reps", defaultReps));
    if (o.reps < 1)
        o.reps = 1;
    o.threads = threaded ? evalThreads(cli) : 1;
    preamble(artifact, o.reps, o.threads);
    return o;
}

} // namespace detail

/**
 * Shared flag handling for the evaluate-style benches: `--help` prints the
 * usage (with this bench's actual defaults) and exits; otherwise `--reps`
 * and `--threads` are parsed and the standard preamble is printed.
 */
inline BenchOptions
setup(const Cli& cli, const char* artifact, int defaultReps,
      const char* extraHelp = nullptr)
{
    return detail::setupImpl(cli, artifact, defaultReps, /*threaded=*/true,
                             extraHelp);
}

/** setup() for the serial benches (hand-rolled loops; no --threads). */
inline int
setupSerial(const Cli& cli, const char* artifact, int defaultReps,
            const char* extraHelp = nullptr)
{
    return detail::setupImpl(cli, artifact, defaultReps, /*threaded=*/false,
                             extraHelp)
        .reps;
}

} // namespace create::bench
