/**
 * @file
 * Table 5: statistical significance of repetitions. Measured success rate
 * vs the number of repeated episodes; convergence by ~100 repetitions
 * justifies the paper's protocol. One SweepRunner cell supplies the
 * ordered per-episode results the running success rate is read off of
 * (the engine re-derives episodes deterministically when the cell itself
 * was resumed from an --out store).
 */

#include "bench_util.hpp"

using namespace create;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const auto opt =
        bench::setupSweep(cli, "Table 5 success rate vs repetitions", 120);
    const int maxReps = opt.reps;

    // Paper setting: wooden task, BER 1e-7 on the controller. On this
    // substrate the equivalent mild stressor is 1e-3 (see EXPERIMENTS.md
    // on the BER axis shift).
    CreateConfig cfg = CreateConfig::uniform(1e-3);
    cfg.injectPlanner = false;

    SweepRunner sweep(bench::sweepOptions(opt));
    const std::size_t h =
        sweep.add({"jarvis-1", static_cast<int>(MineTask::Wooden), cfg,
                   maxReps, EmbodiedSystem::kDefaultSeed0, "tab05"});
    sweep.run();

    std::vector<int> checkpoints = {10, 20, 40, 60, 80, 100, 120};
    Table t("Table 5: measured success rate vs number of repetitions "
            "(wooden, controller BER 1e-3)");
    t.header({"repetitions", "success rate"});
    // All episodes run through the (parallel) evaluation engine; the
    // running success rate is then read off the ordered results.
    const auto& results = sweep.episodes(h);
    int successes = 0;
    std::size_t next = 0;
    for (int i = 0; i < maxReps && next < checkpoints.size(); ++i) {
        successes += results[static_cast<std::size_t>(i)].success ? 1 : 0;
        if (i + 1 == checkpoints[next]) {
            t.row({std::to_string(i + 1),
                   Table::pct(static_cast<double>(successes) / (i + 1))});
            ++next;
        }
    }
    t.print();
    std::printf("\nShape check vs paper (Table 5): the running success "
                "rate converges well before ~100 repetitions.\n");
    return 0;
}
