/**
 * @file
 * Table 5: statistical significance of repetitions. Measured success rate
 * vs the number of repeated episodes; convergence by ~100 repetitions
 * justifies the paper's protocol. The checkpoints are declared as
 * separate cells of ONE episode ledger (reps is a prefix length, not an
 * identity), so the engine executes the deepest cell's episodes exactly
 * once and serves every smaller checkpoint as a prefix slice -- and a
 * stored reps=120 campaign satisfies the whole table with --resume
 * without executing a single episode.
 */

#include "bench_util.hpp"

using namespace create;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const auto opt =
        bench::setupSweep(cli, "Table 5 success rate vs repetitions", 120);
    const int maxReps = opt.reps;

    // Paper setting: wooden task, BER 1e-7 on the controller. On this
    // substrate the equivalent mild stressor is 1e-3 (see EXPERIMENTS.md
    // on the BER axis shift).
    CreateConfig cfg = CreateConfig::uniform(1e-3);
    cfg.injectPlanner = false;

    SweepRunner sweep(bench::sweepOptions(opt));
    const std::vector<int> checkpoints = {10, 20, 40, 60, 80, 100, 120};
    // One cell per checkpoint: all share the ledger of the deepest cell,
    // so everything but the deepest reports as prefix-sliced.
    std::vector<std::pair<int, std::size_t>> rows;
    for (int r : checkpoints)
        if (r <= maxReps)
            rows.emplace_back(
                r, sweep.add({"jarvis-1", static_cast<int>(MineTask::Wooden),
                              cfg, r, EmbodiedSystem::kDefaultSeed0,
                              "tab05@" + std::to_string(r)}));
    // The deepest cell drives execution to the full --reps depth even
    // when it is not itself a checkpoint.
    sweep.add({"jarvis-1", static_cast<int>(MineTask::Wooden), cfg, maxReps,
               EmbodiedSystem::kDefaultSeed0, "tab05"});
    sweep.run();

    Table t("Table 5: measured success rate vs number of repetitions "
            "(wooden, controller BER 1e-3)");
    t.header({"repetitions", "success rate"});
    // Each row is the deterministic fold of the ledger's first N
    // episodes -- identical to the running success rate read off the
    // ordered results.
    for (const auto& [r, h] : rows)
        t.row({std::to_string(r), Table::pct(sweep.stats(h).successRate)});
    t.print();
    std::printf("\nShape check vs paper (Table 5): the running success "
                "rate converges well before ~100 repetitions.\n");
    return 0;
}
