/**
 * @file
 * Fig. 20: CREATE vs prior-art protection across operating voltages.
 * DMR doubles (or worse) energy; ThUnderVolt-style bypass prunes outputs
 * and degrades quality at low voltage; ABFT's recovery loop explodes as
 * BER grows. CREATE (AD+WR+VS) holds task quality at the lowest energy.
 * The voltage x scheme grid is one declared SweepRunner campaign
 * (episode-ledger store: --out/--resume/--shard/--progress).
 */

#include <cmath>

#include "baselines/abft.hpp"
#include "baselines/dmr.hpp"
#include "baselines/thundervolt.hpp"
#include "bench_util.hpp"

using namespace create;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const auto opt =
        bench::setupSweep(cli, "Fig. 20 comparison with existing techniques",
                          6, "  --task NAME  Minecraft task (default wooden)\n");
    const int reps = opt.reps;
    const MineTask task = mineTaskByName(cli.str("task", "wooden"));

    SweepRunner sweep(bench::sweepOptions(opt));

    struct Entry
    {
        double v;
        const char* name;
        CreateConfig cfg;
        std::size_t h = 0;
    };
    std::vector<Entry> entries;
    for (double v : {0.85, 0.80, 0.75, 0.72, 0.68}) {
        CreateConfig createCfg =
            CreateConfig::fullCreate(v, EntropyVoltagePolicy::preset('D'));
        entries.push_back({v, "unprotected", CreateConfig::atVoltage(v, v)});
        entries.push_back({v, "DMR", baselines::dmrConfig(v)});
        entries.push_back({v, "ThUnderVolt", baselines::thunderVoltConfig(v)});
        entries.push_back({v, "ABFT", baselines::abftConfig(v)});
        entries.push_back({v, "CREATE", createCfg});
    }
    for (auto& e : entries)
        e.h = sweep.add({"jarvis-1", static_cast<int>(task), e.cfg, reps,
                         EmbodiedSystem::kDefaultSeed0,
                         std::string(e.name) + "@" + Table::num(e.v, 2)});

    sweep.run();

    Table t(std::string("Fig. 20: success / energy across voltages (") +
            mineTaskName(task) + ")");
    t.header({"voltage", "scheme", "success", "avg steps", "energy (J)"});
    for (const auto& e : entries) {
        const auto& s = sweep.stats(e.h);
        // DMR/ABFT energy multipliers come from the meter's V^2-MAC
        // accounting, which already includes re-executions; reflect
        // them through the simulated-vs-expected MAC ratio.
        double energy = s.avgComputeJ;
        if (e.cfg.protection == Protection::Dmr)
            energy *= 2.0; // duplicate execution at paper scale
        if (e.cfg.protection == Protection::Abft) {
            const double gemmCorrupt = std::min(
                1.0, TimingErrorModel::berAtVoltage(e.v) * 24.0 * 2e4);
            energy *= baselines::abftExpectedAttempts(gemmCorrupt);
        }
        if (e.cfg.protection == Protection::ThunderVolt)
            energy *= 1.05; // bypass fabric overhead
        t.row({Table::num(e.v, 2), e.name, Table::pct(s.successRate),
               Table::num(s.avgStepsSuccess, 0), Table::num(energy, 2)});
    }
    t.print();
    std::printf("\nShape check vs paper: DMR is reliable but >=2x energy; "
                "ThUnderVolt degrades at low voltage; ABFT's recovery cost "
                "grows with BER; CREATE keeps quality at the lowest "
                "energy (paper: 35.0%%/33.8%% savings over the best "
                "baseline).\n");
    return 0;
}
