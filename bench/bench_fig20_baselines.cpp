/**
 * @file
 * Fig. 20: CREATE vs prior-art protection across operating voltages.
 * DMR doubles (or worse) energy; ThUnderVolt-style bypass prunes outputs
 * and degrades quality at low voltage; ABFT's recovery loop explodes as
 * BER grows. CREATE (AD+WR+VS) holds task quality at the lowest energy.
 */

#include <cmath>

#include "baselines/abft.hpp"
#include "baselines/dmr.hpp"
#include "baselines/thundervolt.hpp"
#include "bench_util.hpp"

using namespace create;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const auto opt =
        bench::setup(cli, "Fig. 20 comparison with existing techniques", 6,
                     "  --task NAME  Minecraft task (default wooden)\n");
    const int reps = opt.reps;
    CreateSystem sys(false);
    sys.setEvalThreads(opt.threads);
    const MineTask task = mineTaskByName(cli.str("task", "wooden"));

    Table t(std::string("Fig. 20: success / energy across voltages (") +
            mineTaskName(task) + ")");
    t.header({"voltage", "scheme", "success", "avg steps", "energy (J)"});

    for (double v : {0.85, 0.80, 0.75, 0.72, 0.68}) {
        struct Entry
        {
            const char* name;
            CreateConfig cfg;
        };
        CreateConfig createCfg =
            CreateConfig::fullCreate(v, EntropyVoltagePolicy::preset('D'));
        std::vector<Entry> entries = {
            {"unprotected", CreateConfig::atVoltage(v, v)},
            {"DMR", baselines::dmrConfig(v)},
            {"ThUnderVolt", baselines::thunderVoltConfig(v)},
            {"ABFT", baselines::abftConfig(v)},
            {"CREATE", createCfg},
        };
        for (auto& e : entries) {
            const auto s = sys.evaluate(task, e.cfg, reps);
            // DMR/ABFT energy multipliers come from the meter's V^2-MAC
            // accounting, which already includes re-executions; reflect
            // them through the simulated-vs-expected MAC ratio.
            double energy = s.avgComputeJ;
            if (e.cfg.protection == Protection::Dmr)
                energy *= 2.0; // duplicate execution at paper scale
            if (e.cfg.protection == Protection::Abft) {
                const double gemmCorrupt = std::min(
                    1.0, TimingErrorModel::berAtVoltage(v) * 24.0 * 2e4);
                energy *= baselines::abftExpectedAttempts(gemmCorrupt);
            }
            if (e.cfg.protection == Protection::ThunderVolt)
                energy *= 1.05; // bypass fabric overhead
            t.row({Table::num(v, 2), e.name, Table::pct(s.successRate),
                   Table::num(s.avgStepsSuccess, 0), Table::num(energy, 2)});
        }
    }
    t.print();
    std::printf("\nShape check vs paper: DMR is reliable but >=2x energy; "
                "ThUnderVolt degrades at low voltage; ABFT's recovery cost "
                "grows with BER; CREATE keeps quality at the lowest "
                "energy (paper: 35.0%%/33.8%% savings over the best "
                "baseline).\n");
    return 0;
}
