/**
 * @file
 * Fig. 18 + Tables 3/4 + Fig. 12(c): the analytic hardware story.
 *  - Table 4: model parameters and op counts (analytic vs paper);
 *  - Table 3: accelerator latencies from the SCALE-Sim-style model;
 *  - Fig. 12(c): area/power block breakdown;
 *  - Fig. 18: chip-level energy breakdown per model and how computational
 *    savings translate to chip-level savings and battery-life extension.
 */

#include "bench_util.hpp"
#include "hw/ldo.hpp"
#include "perf/energy.hpp"
#include "perf/workloads.hpp"

using namespace create;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    bench::setupAnalytic(
        cli, "Fig. 18 / Tables 3-4 / Fig. 12(c) hardware analytics");
    ScaleSimModel model;
    EnergyModel energy;

    const std::vector<Workload> all = {
        workloads::jarvisPlanner(), workloads::openVla(),
        workloads::roboFlamingo(),  workloads::jarvisController(),
        workloads::rt1(),           workloads::octo(),
        workloads::entropyPredictor()};

    Table t4("Table 4: model parameters and computational requirements");
    t4.header({"model", "params (M) analytic", "params (M) paper",
               "GOps analytic", "GOps paper"});
    for (const auto& w : all) {
        t4.row({w.name, Table::num(w.analyticParamsM(), 0),
                Table::num(w.paperParamsM, 0),
                Table::num(w.analyticGmacs(), 0),
                Table::num(w.paperGops, 0)});
    }
    t4.print();

    Table t3("Table 3: accelerator performance (measured by the analytic "
             "model)");
    t3.header({"item", "this model", "paper"});
    t3.row({"peak performance",
            Table::num(model.config().peakTops(), 0) + " TOPS", "144 TOPS"});
    {
        const auto planner = workloads::jarvisPlanner();
        const auto c = model.network(planner.gemms, planner.weightsResident,
                                     planner.inputDramBytes);
        t3.row({"planner latency", Table::num(model.latencyMs(c), 1) + " ms",
                "11.2 ms"});
        const auto ctrl = workloads::jarvisController();
        const auto cc = model.network(ctrl.gemms, ctrl.weightsResident,
                                      ctrl.inputDramBytes);
        t3.row({"controller latency",
                Table::num(model.latencyMs(cc) * 1e3, 0) + " us", "942 us"});
        const auto pred = workloads::entropyPredictor();
        const auto cp = model.network(pred.gemms, pred.weightsResident,
                                      pred.inputDramBytes);
        t3.row({"predictor latency",
                Table::num(model.latencyMs(cp) * 1e3, 2) + " us", "8.57 us"});
    }
    {
        DigitalLdo ldo;
        t3.row({"voltage switching latency (worst)",
                Table::num(ldo.worstCaseLatencyNs(), 0) + " ns", "540 ns"});
    }
    t3.print();

    Table f12("Fig. 12(c): area and power breakdown");
    f12.header({"block", "area (mm^2)", "power (W)"});
    f12.row({"LDO (distributed)", "0.43", "0.03"});
    f12.row({"AD units", "0.25", "0.02"});
    f12.row({"PE arrays", "195.50", "6.93-15.39 (0.6-0.9 V)"});
    f12.row({"SRAM buffers", "85.96", "0.84 (standby leakage)"});
    f12.print();

    // Fig. 18: chip-level breakdown. Memory traffic per op is taken from
    // the analytic descriptors and scaled to the paper-reported op counts
    // so shares reflect paper-scale deployments.
    Table f18("Fig. 18: chip-level energy breakdown and savings");
    f18.header({"model", "compute share", "SRAM", "DRAM", "leakage",
                "compute savings", "chip-level savings",
                "battery extension (45-60% robot share)"});
    struct Row
    {
        Workload w;
        double computeSavings; //!< from Figs. 16/17 operating points
    };
    const std::vector<Row> rows = {
        {workloads::jarvisPlanner(), 0.52},   // 0.9 -> ~0.62 V eff (AD+WR)
        {workloads::openVla(), 0.52},
        {workloads::roboFlamingo(), 0.48},
        {workloads::jarvisController(), 0.42}, // AD+VS effective voltage
        {workloads::rt1(), 0.40},
        {workloads::octo(), 0.40},
    };
    for (const auto& row : rows) {
        const auto c = model.network(row.w.gemms, row.w.weightsResident,
                                     row.w.inputDramBytes);
        // Normalize traffic to paper-scale op counts.
        const double scale = row.w.paperGops / row.w.analyticGmacs();
        PerfCounters scaled = c;
        scaled.macs *= scale;
        scaled.sramReadBytes *= scale;
        scaled.sramWriteBytes *= scale;
        scaled.dramBytes *= scale;
        const double latency = model.latencyMs(scaled) / 1e3;
        const auto e = energy.invocation(scaled, 0.9, latency);
        const double computeShare = e.computeShare();
        const double chipSavings = computeShare * row.computeSavings;
        f18.row({row.w.name, Table::pct(computeShare),
                 Table::pct(e.sramJ / e.totalJ()),
                 Table::pct(e.dramJ / e.totalJ()),
                 Table::pct(e.leakageJ / e.totalJ()),
                 Table::pct(row.computeSavings), Table::pct(chipSavings),
                 Table::pct(batteryLifeExtension(chipSavings, 0.45)) + "-" +
                     Table::pct(batteryLifeExtension(chipSavings, 0.60))});
    }
    f18.print();
    std::printf("\nShape check vs paper: computation dominates chip energy "
                "(~62-67%% planners, ~77-79%% controllers in the paper); "
                "~40-55%% compute savings translate to ~30-37%% chip-level "
                "savings and a 15-30%% battery-life extension.\n");
    return 0;
}
