/**
 * @file
 * Fig. 17: cross-platform generality.
 *  (a) Planners: AD+WR applied to the JARVIS-1, OpenVLA (LIBERO tasks) and
 *      RoboFlamingo (CALVIN tasks) planner stand-ins -- planner-side
 *      energy savings at iso task quality.
 *  (b) Controllers: AD+VS applied to the JARVIS-1, Octo and RT-1 stand-ins
 *      on OXE-style tasks -- controller-side savings.
 */

#include <cmath>

#include "bench_util.hpp"
#include "core/rotation.hpp"
#include "models/platforms.hpp"

using namespace create;

namespace {

/** One manipulation episode: planner decomposes, controller executes. */
struct ManipResult
{
    bool success = false;
    int steps = 0;
    int plannerInvocations = 0;
    double plannerV2 = 1.0;
    double controllerV2 = 1.0;
};

ManipResult
runManipEpisode(PlannerModel& planner, ControllerModel& controller,
                EntropyPredictor* predictor,
                const EntropyVoltagePolicy* policy, ManipTask task,
                std::uint64_t seed, double plannerV, bool ad, bool inject)
{
    ManipResult r;
    ManipWorld world(task, seed);
    ComputeContext pctx(seed ^ 0x111);
    ComputeContext cctx(seed ^ 0x222);
    ComputeContext predCtx(seed ^ 0x333);
    pctx.domain = Domain::Planner;
    cctx.domain = Domain::Controller;
    pctx.anomalyDetection = cctx.anomalyDetection = ad;
    if (inject) {
        pctx.setVoltage(plannerV);
        pctx.setVoltageMode();
        cctx.setVoltage(0.90);
        cctx.setVoltageMode();
    }
    DigitalLdo ldo;
    Rng rng(seed ^ 0x444);

    const auto tokens =
        planner.inferPlan(static_cast<int>(task), 0, pctx);
    ++r.plannerInvocations;
    const auto plan = platforms::decodeManipPlan(tokens);
    const double maxH = std::log(static_cast<double>(kNumManipActions));
    int steps = 0;
    for (const auto st : plan) {
        world.setActiveSubtask(st);
        while (!world.subtaskComplete() && steps < ManipWorld::kStepCap) {
            const ManipObs obs = world.observe();
            if (predictor && policy && steps % 5 == 0) {
                const double h = predictor->infer(
                    world.renderImage(predictor->config().imgRes),
                    platforms::manipPrompt(st, obs,
                                           predictor->config().promptDim),
                    predCtx);
                ldo.set(policy->voltageFor(
                    std::min(1.0, std::max(0.0, h / maxH))));
                cctx.setVoltage(ldo.vout());
            }
            const auto logits = controller.inferLogits(
                static_cast<int>(st), obs.spatial, obs.state, cctx);
            world.step(
                static_cast<ManipAction>(sampleAction(logits, rng)));
            ++steps;
        }
        if (steps >= ManipWorld::kStepCap)
            break;
    }
    r.success = world.taskComplete();
    r.steps = r.success ? steps : ManipWorld::kStepCap;
    const auto& pu = pctx.meter.usage(Domain::Planner);
    const auto& cu = cctx.meter.usage(Domain::Controller);
    if (pu.macs > 0)
        r.plannerV2 = pu.v2WeightedMacs / pu.macs;
    if (cu.macs > 0)
        r.controllerV2 = cu.v2WeightedMacs / cu.macs;
    return r;
}

struct AggStats
{
    double successRate = 0.0;
    double plannerV2 = 1.0;
    double controllerV2 = 1.0;
    double avgSteps = 0.0;
};

template <typename F>
AggStats
repeat(int reps, F&& run)
{
    AggStats a;
    double pv = 0, cv = 0, st = 0;
    int ok = 0;
    for (int i = 0; i < reps; ++i) {
        const ManipResult r = run(static_cast<std::uint64_t>(1000 + i * 17));
        ok += r.success ? 1 : 0;
        pv += r.plannerV2;
        cv += r.controllerV2;
        st += r.steps;
    }
    a.successRate = static_cast<double>(ok) / reps;
    a.plannerV2 = pv / reps;
    a.controllerV2 = cv / reps;
    a.avgSteps = st / reps;
    return a;
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const int reps = static_cast<int>(cli.integer("reps", 10));
    bench::preamble("Fig. 17 cross-platform generality", reps);

    // --- (a) planners: AD+WR ------------------------------------------------
    Table a("Fig. 17(a): planner energy savings with AD+WR (iso quality)");
    a.header({"platform", "benchmark task", "baseline success",
              "AD+WR success", "planner energy savings"});

    // JARVIS-1 rows via the full Minecraft system.
    {
        CreateSystem sys(false);
        for (const char* name : {"wooden", "stone"}) {
            const MineTask task = mineTaskByName(name);
            const auto base =
                sys.evaluate(task, CreateConfig::clean(), reps);
            CreateConfig adwr = CreateConfig::atVoltage(0.72, 0.90);
            adwr.anomalyDetection = true;
            adwr.weightRotation = true;
            adwr.injectController = false;
            const auto prot = sys.evaluate(task, adwr, reps);
            const double save =
                1.0 - (prot.avgPlannerEffV * prot.avgPlannerEffV) /
                          (base.avgPlannerEffV * base.avgPlannerEffV);
            a.row({"JARVIS-1", name, Table::pct(base.successRate),
                   Table::pct(prot.successRate), Table::pct(save)});
        }
    }

    const struct
    {
        const char* platform;
        std::vector<ManipTask> tasks;
    } plannerPlatforms[] = {
        {"openvla",
         {ManipTask::Wine, ManipTask::Alphabet, ManipTask::Bbq}},
        {"roboflamingo",
         {ManipTask::Button, ManipTask::Block, ManipTask::Handle}},
    };
    for (const auto& pp : plannerPlatforms) {
        auto base = platforms::manipPlanner(pp.platform, true);
        auto rotated = platforms::manipPlanner(pp.platform, false);
        applyWeightRotation(*rotated);
        platforms::calibrateManipPlanner(*rotated);
        auto controller = platforms::manipController(
            std::string(pp.platform) == "openvla" ? "octo" : "rt1", true);
        for (const auto task : pp.tasks) {
            const auto clean = repeat(reps, [&](std::uint64_t seed) {
                return runManipEpisode(*base, *controller, nullptr, nullptr,
                                       task, seed, 0.90, false, false);
            });
            const auto prot = repeat(reps, [&](std::uint64_t seed) {
                return runManipEpisode(*rotated, *controller, nullptr,
                                       nullptr, task, seed, 0.72, true,
                                       true);
            });
            a.row({pp.platform, manipTaskName(task),
                   Table::pct(clean.successRate),
                   Table::pct(prot.successRate),
                   Table::pct(1.0 - prot.plannerV2 / clean.plannerV2)});
        }
    }
    a.print();

    // --- (b) controllers: AD+VS ---------------------------------------------
    Table b("Fig. 17(b): controller energy savings with AD+VS (iso "
            "quality)");
    b.header({"platform", "benchmark task", "baseline success",
              "AD+VS success", "controller energy savings"});
    {
        CreateSystem sys(false);
        for (const char* name : {"charcoal", "chicken"}) {
            const MineTask task = mineTaskByName(name);
            const auto base =
                sys.evaluate(task, CreateConfig::clean(), reps);
            CreateConfig advs = CreateConfig::atVoltage(0.90, 0.90);
            advs.anomalyDetection = true;
            advs.voltageScaling = true;
            advs.policy = EntropyVoltagePolicy::preset('E');
            advs.injectPlanner = false;
            const auto prot = sys.evaluate(task, advs, reps);
            const double save =
                1.0 - (prot.avgControllerEffV * prot.avgControllerEffV) /
                          (base.avgControllerEffV * base.avgControllerEffV);
            b.row({"JARVIS-1", name, Table::pct(base.successRate),
                   Table::pct(prot.successRate), Table::pct(save)});
        }
    }
    const struct
    {
        const char* platform;
        std::vector<ManipTask> tasks;
    } controllerPlatforms[] = {
        {"octo",
         {ManipTask::Eggplant, ManipTask::Coke, ManipTask::Carrot}},
        {"rt1", {ManipTask::Open, ManipTask::Move, ManipTask::Place}},
    };
    const auto policy = EntropyVoltagePolicy::preset('E');
    for (const auto& cp : controllerPlatforms) {
        auto planner = platforms::manipPlanner(
            std::string(cp.platform) == "octo" ? "openvla" : "roboflamingo",
            true);
        auto controller = platforms::manipController(cp.platform, true);
        auto predictor =
            platforms::manipPredictor(cp.platform, *controller, true);
        for (const auto task : cp.tasks) {
            const auto clean = repeat(reps, [&](std::uint64_t seed) {
                return runManipEpisode(*planner, *controller, nullptr,
                                       nullptr, task, seed, 0.90, false,
                                       false);
            });
            const auto prot = repeat(reps, [&](std::uint64_t seed) {
                return runManipEpisode(*planner, *controller,
                                       predictor.get(), &policy, task, seed,
                                       0.90, true, true);
            });
            b.row({cp.platform, manipTaskName(task),
                   Table::pct(clean.successRate),
                   Table::pct(prot.successRate),
                   Table::pct(1.0 - prot.controllerV2 / clean.controllerV2)});
        }
    }
    b.print();
    std::printf("\nShape check vs paper: AD+WR and AD+VS transfer across "
                "platforms and tasks with consistent savings (paper: 50.7%%"
                " planner / 39.3%% controller averages).\n");
    return 0;
}
