/**
 * @file
 * Fig. 17: cross-platform generality.
 *  (a) Planners: AD+WR applied to the JARVIS-1, OpenVLA (LIBERO tasks) and
 *      RoboFlamingo (CALVIN tasks) planner stand-ins -- planner-side
 *      energy savings at iso task quality.
 *  (b) Controllers: AD+VS applied to the JARVIS-1, Octo and RT-1 stand-ins
 *      on OXE-style tasks -- controller-side savings.
 *
 * Every platform runs through the shared EmbodiedSystem interface: the
 * JARVIS-1 rows use MineSystem, the manipulation rows use ManipSystem, and
 * all episode repetition/aggregation happens in the common evaluation
 * engine (parallel across --threads workers).
 */

#include <vector>

#include "bench_util.hpp"
#include "core/manip_system.hpp"

using namespace create;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const int reps = static_cast<int>(cli.integer("reps", 10));
    const int threads = bench::evalThreads(cli);
    bench::preamble("Fig. 17 cross-platform generality", reps, threads);

    MineSystem jarvis(false);
    ManipSystem libero("openvla", "octo", false);
    ManipSystem calvin("roboflamingo", "rt1", false);
    for (EmbodiedSystem* sys :
         {static_cast<EmbodiedSystem*>(&jarvis),
          static_cast<EmbodiedSystem*>(&libero),
          static_cast<EmbodiedSystem*>(&calvin)})
        sys->setEvalThreads(threads);

    // --- (a) planners: AD+WR ------------------------------------------------
    Table a("Fig. 17(a): planner energy savings with AD+WR (iso quality)");
    a.header({"platform", "benchmark task", "baseline success",
              "AD+WR success", "planner energy savings"});

    CreateConfig adwr = CreateConfig::atVoltage(0.72, 0.90);
    adwr.anomalyDetection = true;
    adwr.weightRotation = true;
    adwr.injectController = false;

    struct PlannerRow
    {
        EmbodiedSystem* sys;
        const char* platform;
        std::vector<int> tasks;
    };
    const PlannerRow plannerRows[] = {
        {&jarvis, "JARVIS-1",
         {static_cast<int>(mineTaskByName("wooden")),
          static_cast<int>(mineTaskByName("stone"))}},
        {&libero, "openvla",
         {static_cast<int>(ManipTask::Wine),
          static_cast<int>(ManipTask::Alphabet),
          static_cast<int>(ManipTask::Bbq)}},
        {&calvin, "roboflamingo",
         {static_cast<int>(ManipTask::Button),
          static_cast<int>(ManipTask::Block),
          static_cast<int>(ManipTask::Handle)}},
    };
    for (const auto& row : plannerRows) {
        for (const int task : row.tasks) {
            const auto base =
                row.sys->evaluate(task, CreateConfig::clean(), reps);
            const auto prot = row.sys->evaluate(task, adwr, reps);
            const double save = 1.0 - prot.avgPlannerV2 / base.avgPlannerV2;
            a.row({row.platform, row.sys->taskName(task),
                   Table::pct(base.successRate), Table::pct(prot.successRate),
                   Table::pct(save)});
        }
    }
    a.print();

    // --- (b) controllers: AD+VS ---------------------------------------------
    Table b("Fig. 17(b): controller energy savings with AD+VS (iso "
            "quality)");
    b.header({"platform", "benchmark task", "baseline success",
              "AD+VS success", "controller energy savings"});

    CreateConfig advs = CreateConfig::atVoltage(0.90, 0.90);
    advs.anomalyDetection = true;
    advs.voltageScaling = true;
    advs.policy = EntropyVoltagePolicy::preset('E');
    advs.injectPlanner = false;

    const PlannerRow controllerRows[] = {
        {&jarvis, "JARVIS-1",
         {static_cast<int>(mineTaskByName("charcoal")),
          static_cast<int>(mineTaskByName("chicken"))}},
        {&libero, "octo",
         {static_cast<int>(ManipTask::Eggplant),
          static_cast<int>(ManipTask::Coke),
          static_cast<int>(ManipTask::Carrot)}},
        {&calvin, "rt1",
         {static_cast<int>(ManipTask::Open),
          static_cast<int>(ManipTask::Move),
          static_cast<int>(ManipTask::Place)}},
    };
    for (const auto& row : controllerRows) {
        for (const int task : row.tasks) {
            const auto base =
                row.sys->evaluate(task, CreateConfig::clean(), reps);
            const auto prot = row.sys->evaluate(task, advs, reps);
            const double save =
                1.0 - prot.avgControllerV2 / base.avgControllerV2;
            b.row({row.platform, row.sys->taskName(task),
                   Table::pct(base.successRate), Table::pct(prot.successRate),
                   Table::pct(save)});
        }
    }
    b.print();
    std::printf("\nShape check vs paper: AD+WR and AD+VS transfer across "
                "platforms and tasks with consistent savings (paper: 50.7%%"
                " planner / 39.3%% controller averages).\n");
    return 0;
}
