/**
 * @file
 * Fig. 17: cross-platform generality, driven by the PlatformRegistry.
 *  (a) Planners: AD+WR applied to every registered platform's planner
 *      stand-in -- planner-side energy savings at iso task quality.
 *  (b) Controllers: AD+VS applied to every platform's controller
 *      stand-in -- controller-side savings.
 *  (c) Navigation resilience: the third platform family (NavWorld drone
 *      missions) at an aggressive operating point, unprotected vs the
 *      full CREATE stack.
 *
 * Platforms are enumerated from core/platform_registry.hpp (no platform
 * list is hard-coded here): `--list-platforms` prints the catalogue and
 * `--platforms a,b,c` restricts the run. The whole figure is one
 * SweepRunner campaign over platform-named cells: the clean deployment
 * of each (platform, task) pair is declared by every section that
 * baselines against it and executed once by the engine's memoization,
 * and the cells shard across --threads workers (or --shard i/N
 * processes) / checkpoint with --out/--resume at episode granularity.
 */

#include <set>
#include <vector>

#include "bench_util.hpp"
#include "core/platform_registry.hpp"

using namespace create;

namespace {

constexpr const char* kExtraHelp =
    "  --platforms a,b,c  restrict to a comma-separated platform list\n"
    "  --list-platforms   print the platform registry and exit\n";

void
listPlatforms(const PlatformRegistry& reg)
{
    Table t("Registered embodied platforms");
    t.header({"platform", "family", "planner", "GOps", "controller", "GOps",
              "planner V", "controller V"});
    for (const auto& p : reg.all())
        t.row({p.name, p.envFamily, p.plannerName,
               Table::num(p.plannerGops, 0), p.controllerName,
               Table::num(p.controllerGops, 0),
               Table::num(p.defaultPlannerV, 2),
               Table::num(p.defaultControllerV, 2)});
    t.print();
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const auto& reg = PlatformRegistry::instance();
    if (cli.flag("list-platforms")) {
        listPlatforms(reg);
        return 0;
    }
    std::vector<const PlatformInfo*> selected;
    try {
        selected = reg.select(cli.str("platforms", ""));
    } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s (try --list-platforms)\n", e.what());
        return 1;
    }
    const auto opt =
        bench::setupSweep(cli, "Fig. 17 cross-platform generality", 10,
                          kExtraHelp);
    bench::JsonReport json(opt.jsonPath);

    SweepRunner sweep(bench::sweepOptions(opt));
    auto cell = [&](const PlatformInfo* info, int task,
                    const CreateConfig& cfg, const std::string& label) {
        return sweep.add({info->name, task, cfg, opt.reps,
                          EmbodiedSystem::kDefaultSeed0,
                          info->name + "/" + label});
    };
    auto cleanCell = [&](const PlatformInfo* info, int task) {
        return cell(info, task, CreateConfig::clean(), "clean");
    };

    // --- declare the sweep matrix ---------------------------------------
    struct ARow
    {
        const PlatformInfo* info;
        int task;
        std::size_t clean, prot;
    };
    std::vector<ARow> aRows, bRows;
    for (const auto* info : selected) {
        CreateConfig adwr = CreateConfig::atVoltage(info->defaultPlannerV,
                                                    info->defaultControllerV);
        adwr.anomalyDetection = true;
        adwr.weightRotation = true;
        adwr.injectController = false;
        for (const int task : info->plannerTasks)
            aRows.push_back({info, task, cleanCell(info, task),
                             cell(info, task, adwr, "AD+WR")});
    }
    for (const auto* info : selected) {
        CreateConfig advs = CreateConfig::atVoltage(info->defaultControllerV,
                                                    info->defaultControllerV);
        advs.anomalyDetection = true;
        advs.voltageScaling = true;
        advs.policy = EntropyVoltagePolicy::preset('E');
        advs.injectPlanner = false;
        for (const int task : info->controllerTasks)
            bRows.push_back({info, task, cleanCell(info, task),
                             cell(info, task, advs, "AD+VS")});
    }
    struct CRow
    {
        const PlatformInfo* info;
        int task;
        std::size_t clean, unprot, full;
    };
    std::vector<CRow> cRows;
    for (const auto* info : selected) {
        if (info->envFamily != "navigation")
            continue;
        CreateConfig unprot = CreateConfig::atVoltage(info->defaultPlannerV,
                                                      0.80);
        CreateConfig full = CreateConfig::fullCreate(
            info->defaultPlannerV, EntropyVoltagePolicy::preset('E'));
        std::set<int> missions(info->plannerTasks.begin(),
                               info->plannerTasks.end());
        missions.insert(info->controllerTasks.begin(),
                        info->controllerTasks.end());
        for (const int task : missions)
            cRows.push_back({info, task, cleanCell(info, task),
                             cell(info, task, unprot, "unprotected"),
                             cell(info, task, full, "CREATE")});
    }

    sweep.run();

    // Task-name lookup for rendering, off the engine's own prototypes.
    auto taskName = [&](const PlatformInfo* info, int task) -> std::string {
        return sweep.system(info->name).taskName(task);
    };

    // --- (a) planners: AD+WR ------------------------------------------------
    Table a("Fig. 17(a): planner energy savings with AD+WR (iso quality)");
    a.header({"platform", "benchmark task", "baseline success",
              "AD+WR success", "planner energy savings"});
    for (const auto& r : aRows) {
        const auto& base = sweep.stats(r.clean);
        const auto& prot = sweep.stats(r.prot);
        const double save = 1.0 - prot.avgPlannerV2 / base.avgPlannerV2;
        a.row({r.info->name, taskName(r.info, r.task),
               Table::pct(base.successRate), Table::pct(prot.successRate),
               Table::pct(save)});
        json.add("fig17a/" + r.info->name + "/" + taskName(r.info, r.task),
                 {{"baselineSuccess", base.successRate},
                  {"adwrSuccess", prot.successRate},
                  {"plannerEnergySavings", save}});
    }
    a.print();

    // --- (b) controllers: AD+VS ---------------------------------------------
    Table b("Fig. 17(b): controller energy savings with AD+VS (iso "
            "quality)");
    b.header({"platform", "benchmark task", "baseline success",
              "AD+VS success", "controller energy savings"});
    for (const auto& r : bRows) {
        const auto& base = sweep.stats(r.clean);
        const auto& prot = sweep.stats(r.prot);
        const double save =
            1.0 - prot.avgControllerV2 / base.avgControllerV2;
        b.row({r.info->name, taskName(r.info, r.task),
               Table::pct(base.successRate), Table::pct(prot.successRate),
               Table::pct(save)});
        json.add("fig17b/" + r.info->name + "/" + taskName(r.info, r.task),
                 {{"baselineSuccess", base.successRate},
                  {"advsSuccess", prot.successRate},
                  {"controllerEnergySavings", save}});
    }
    b.print();

    // --- (c) navigation family: protection at an aggressive voltage --------
    Table c("Fig. 17(c): navigation missions at aggressive voltage -- "
            "unprotected vs full CREATE (AD+WR+VS)");
    if (!cRows.empty())
        c.header({"platform", "mission", "clean success",
                  "unprotected @ low V", "CREATE @ low V"});
    for (const auto& r : cRows) {
        const auto& clean = sweep.stats(r.clean);
        const auto& bad = sweep.stats(r.unprot);
        const auto& prot = sweep.stats(r.full);
        c.row({r.info->name, taskName(r.info, r.task),
               Table::pct(clean.successRate), Table::pct(bad.successRate),
               Table::pct(prot.successRate)});
        json.add("fig17c/" + r.info->name + "/" + taskName(r.info, r.task),
                 {{"cleanSuccess", clean.successRate},
                  {"unprotectedSuccess", bad.successRate},
                  {"createSuccess", prot.successRate}});
    }
    if (!cRows.empty())
        c.print();

    std::printf("\nShape check vs paper: AD+WR and AD+VS transfer across "
                "platform families and tasks with consistent savings "
                "(paper: 50.7%% planner / 39.3%% controller averages), and "
                "the full stack recovers task success at voltages where "
                "the unprotected stacks collapse.\n");
    json.write();
    return 0;
}
