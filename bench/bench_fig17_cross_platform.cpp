/**
 * @file
 * Fig. 17: cross-platform generality, driven by the PlatformRegistry.
 *  (a) Planners: AD+WR applied to every registered platform's planner
 *      stand-in -- planner-side energy savings at iso task quality.
 *  (b) Controllers: AD+VS applied to every platform's controller
 *      stand-in -- controller-side savings.
 *  (c) Navigation resilience: the third platform family (NavWorld drone
 *      missions) at an aggressive operating point, unprotected vs the
 *      full CREATE stack.
 *
 * Platforms are enumerated from core/platform_registry.hpp (no platform
 * list is hard-coded here): `--list-platforms` prints the catalogue and
 * `--platforms a,b,c` restricts the run. Every platform runs through the
 * shared EmbodiedSystem interface and the common evaluation engine
 * (parallel across --threads workers).
 */

#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/platform_registry.hpp"

using namespace create;

namespace {

constexpr const char* kExtraHelp =
    "  --platforms a,b,c  restrict to a comma-separated platform list\n"
    "  --list-platforms   print the platform registry and exit\n";

void
listPlatforms(const PlatformRegistry& reg)
{
    Table t("Registered embodied platforms");
    t.header({"platform", "family", "planner", "GOps", "controller", "GOps",
              "planner V", "controller V"});
    for (const auto& p : reg.all())
        t.row({p.name, p.envFamily, p.plannerName,
               Table::num(p.plannerGops, 0), p.controllerName,
               Table::num(p.controllerGops, 0),
               Table::num(p.defaultPlannerV, 2),
               Table::num(p.defaultControllerV, 2)});
    t.print();
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const auto& reg = PlatformRegistry::instance();
    if (cli.flag("list-platforms")) {
        listPlatforms(reg);
        return 0;
    }
    std::vector<const PlatformInfo*> selected;
    try {
        selected = reg.select(cli.str("platforms", ""));
    } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s (try --list-platforms)\n", e.what());
        return 1;
    }
    const auto opt =
        bench::setup(cli, "Fig. 17 cross-platform generality", 10,
                     kExtraHelp);
    bench::JsonReport json(opt.jsonPath);

    std::vector<std::unique_ptr<EmbodiedSystem>> systems;
    for (const auto* info : selected) {
        systems.push_back(info->factory(/*verbose=*/false));
        systems.back()->setEvalThreads(opt.threads);
    }

    // Sections (a), (b), and (c) baseline against the same clean
    // deployment of the same (platform, task) pairs; evaluate each once.
    std::map<std::pair<std::size_t, int>, TaskStats> cleanCache;
    auto cleanStats = [&](std::size_t i, int task) -> const TaskStats& {
        const auto key = std::make_pair(i, task);
        auto it = cleanCache.find(key);
        if (it == cleanCache.end())
            it = cleanCache
                     .emplace(key, systems[i]->evaluate(
                                       task, CreateConfig::clean(), opt.reps))
                     .first;
        return it->second;
    };

    // --- (a) planners: AD+WR ------------------------------------------------
    Table a("Fig. 17(a): planner energy savings with AD+WR (iso quality)");
    a.header({"platform", "benchmark task", "baseline success",
              "AD+WR success", "planner energy savings"});
    for (std::size_t i = 0; i < selected.size(); ++i) {
        const auto* info = selected[i];
        EmbodiedSystem& sys = *systems[i];
        CreateConfig adwr = CreateConfig::atVoltage(info->defaultPlannerV,
                                                    info->defaultControllerV);
        adwr.anomalyDetection = true;
        adwr.weightRotation = true;
        adwr.injectController = false;
        for (const int task : info->plannerTasks) {
            const auto& base = cleanStats(i, task);
            const auto prot = sys.evaluate(task, adwr, opt.reps);
            const double save = 1.0 - prot.avgPlannerV2 / base.avgPlannerV2;
            a.row({info->name, sys.taskName(task),
                   Table::pct(base.successRate), Table::pct(prot.successRate),
                   Table::pct(save)});
            json.add("fig17a/" + info->name + "/" + sys.taskName(task),
                     {{"baselineSuccess", base.successRate},
                      {"adwrSuccess", prot.successRate},
                      {"plannerEnergySavings", save}});
        }
    }
    a.print();

    // --- (b) controllers: AD+VS ---------------------------------------------
    Table b("Fig. 17(b): controller energy savings with AD+VS (iso "
            "quality)");
    b.header({"platform", "benchmark task", "baseline success",
              "AD+VS success", "controller energy savings"});
    for (std::size_t i = 0; i < selected.size(); ++i) {
        const auto* info = selected[i];
        EmbodiedSystem& sys = *systems[i];
        CreateConfig advs = CreateConfig::atVoltage(info->defaultControllerV,
                                                    info->defaultControllerV);
        advs.anomalyDetection = true;
        advs.voltageScaling = true;
        advs.policy = EntropyVoltagePolicy::preset('E');
        advs.injectPlanner = false;
        for (const int task : info->controllerTasks) {
            const auto& base = cleanStats(i, task);
            const auto prot = sys.evaluate(task, advs, opt.reps);
            const double save =
                1.0 - prot.avgControllerV2 / base.avgControllerV2;
            b.row({info->name, sys.taskName(task),
                   Table::pct(base.successRate), Table::pct(prot.successRate),
                   Table::pct(save)});
            json.add("fig17b/" + info->name + "/" + sys.taskName(task),
                     {{"baselineSuccess", base.successRate},
                      {"advsSuccess", prot.successRate},
                      {"controllerEnergySavings", save}});
        }
    }
    b.print();

    // --- (c) navigation family: protection at an aggressive voltage --------
    bool navHeader = false;
    Table c("Fig. 17(c): navigation missions at aggressive voltage -- "
            "unprotected vs full CREATE (AD+WR+VS)");
    for (std::size_t i = 0; i < selected.size(); ++i) {
        const auto* info = selected[i];
        if (info->envFamily != "navigation")
            continue;
        if (!navHeader) {
            c.header({"platform", "mission", "clean success",
                      "unprotected @ low V", "CREATE @ low V"});
            navHeader = true;
        }
        EmbodiedSystem& sys = *systems[i];
        CreateConfig unprot = CreateConfig::atVoltage(info->defaultPlannerV,
                                                      0.80);
        CreateConfig full = CreateConfig::fullCreate(
            info->defaultPlannerV, EntropyVoltagePolicy::preset('E'));
        std::set<int> missions(info->plannerTasks.begin(),
                               info->plannerTasks.end());
        missions.insert(info->controllerTasks.begin(),
                        info->controllerTasks.end());
        for (const int task : missions) {
            const auto& clean = cleanStats(i, task);
            const auto bad = sys.evaluate(task, unprot, opt.reps);
            const auto prot = sys.evaluate(task, full, opt.reps);
            c.row({info->name, sys.taskName(task),
                   Table::pct(clean.successRate),
                   Table::pct(bad.successRate),
                   Table::pct(prot.successRate)});
            json.add("fig17c/" + info->name + "/" + sys.taskName(task),
                     {{"cleanSuccess", clean.successRate},
                      {"unprotectedSuccess", bad.successRate},
                      {"createSuccess", prot.successRate}});
        }
    }
    if (navHeader)
        c.print();

    std::printf("\nShape check vs paper: AD+WR and AD+VS transfer across "
                "platform families and tasks with consistent savings "
                "(paper: 50.7%% planner / 39.3%% controller averages), and "
                "the full stack recovers task success at voltages where "
                "the unprotected stacks collapse.\n");
    json.write();
    return 0;
}
