/**
 * @file
 * Google-benchmark microbenchmarks for the hot substrate paths: integer
 * GEMM (dispatched SIMD tier; force one with CREATE_FORCE_ISA), the
 * cross-episode batched-GEMM data path, fault injection, the full faulty
 * pipeline, the systolic model, Hadamard rotation, single model
 * inferences, and the episode evaluation engine (serial vs parallel
 * fan-out).
 *
 * `--json <path>` writes the per-benchmark latency records (including the
 * per-kernel and per-inference timings) as JSON -- the machine-readable
 * perf trajectory tracked in BENCH_micro.json at the repo root and
 * uploaded by the CI perf-smoke job. It expands to google-benchmark's
 * JSON reporter flags, so it composes with --benchmark_filter and
 * --benchmark_min_time. The JSON context carries create_simd (the
 * dispatched tier) and create_build_type (this binary's NDEBUG state --
 * the perf gate refuses debug-build numbers; library_build_type only
 * describes the benchmark .so).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <benchmark/benchmark.h>

#include "common/serialize.hpp"
#include "common/store_keys.hpp"
#include "core/coordinator.hpp"
#include "core/manip_system.hpp"
#include "core/store_backend.hpp"
#include "fault/injector.hpp"
#include "hw/faulty_gemm.hpp"
#include "hw/kernel_dispatch.hpp"
#include "hw/systolic.hpp"
#include "models/model_zoo.hpp"
#include "tensor/ops.hpp"

using namespace create;

namespace {

void
BM_IntGemm(benchmark::State& state)
{
    const auto n = static_cast<std::int64_t>(state.range(0));
    std::vector<std::int8_t> x(static_cast<std::size_t>(n * n), 3);
    std::vector<std::int8_t> w(static_cast<std::size_t>(n * n), -2);
    std::vector<std::int32_t> acc(static_cast<std::size_t>(n * n));
    for (auto _ : state) {
        std::fill(acc.begin(), acc.end(), 0);
        intGemm(x.data(), n, n, w.data(), n, acc.data());
        benchmark::DoNotOptimize(acc.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_IntGemm)->Arg(32)->Arg(64)->Arg(128);

/**
 * Ghost-batching harness: the BatchedInferenceQueue's fused data path
 * (gather the B requests' rows into staging, one wide kernel call, memcpy
 * the row slices back) run deterministically on one thread, so the m-row
 * fusion win is measured without scheduler noise. B = 1 is the unfused
 * baseline (the queue's solo path: direct call, no staging) -- compare
 * per-request time across B.
 */
struct GhostBatch
{
    struct Shape
    {
        std::int64_t m, k, n;
    };

    GhostBatch(std::vector<Shape> seq, int batch)
        : seq_(std::move(seq)), batch_(batch)
    {
        std::size_t mxk = 0, mxn = 0;
        for (const Shape& s : seq_) {
            w_.emplace_back(static_cast<std::size_t>(s.k * s.n));
            mxk = std::max(mxk, static_cast<std::size_t>(s.m * s.k));
            mxn = std::max(mxn, static_cast<std::size_t>(s.m * s.n));
        }
        int v = 1;
        for (auto& w : w_)
            for (auto& b : w)
                b = static_cast<std::int8_t>((v = v * 75 % 65537) % 255 -
                                             127);
        x_.resize(static_cast<std::size_t>(batch_) * mxk);
        for (std::size_t i = 0; i < x_.size(); ++i)
            x_[i] = static_cast<std::int8_t>((v = v * 75 % 65537) % 255 -
                                             127);
        acc_.resize(static_cast<std::size_t>(batch_) * mxn);
        stageX_.resize(x_.size());
        stageAcc_.resize(acc_.size());
    }

    void run()
    {
        for (std::size_t li = 0; li < seq_.size(); ++li) {
            const Shape& s = seq_[li];
            const std::int8_t* wq = w_[li].data();
            if (batch_ == 1) {
                std::memset(acc_.data(), 0,
                            static_cast<std::size_t>(s.m * s.n) *
                                sizeof(std::int32_t));
                simd::active().intGemm(x_.data(), s.m, s.k, wq, s.n,
                                       acc_.data());
                continue;
            }
            const std::int64_t mTotal = s.m * batch_;
            for (int b = 0; b < batch_; ++b)
                std::memcpy(stageX_.data() + b * s.m * s.k,
                            x_.data() + b * s.m * s.k,
                            static_cast<std::size_t>(s.m * s.k));
            std::memset(stageAcc_.data(), 0,
                        static_cast<std::size_t>(mTotal * s.n) *
                            sizeof(std::int32_t));
            simd::active().intGemm(stageX_.data(), mTotal, s.k, wq, s.n,
                                   stageAcc_.data());
            for (int b = 0; b < batch_; ++b)
                std::memcpy(acc_.data() + b * s.m * s.n,
                            stageAcc_.data() + b * s.m * s.n,
                            static_cast<std::size_t>(s.m * s.n) *
                                sizeof(std::int32_t));
        }
        benchmark::DoNotOptimize(acc_.data());
    }

    std::vector<Shape> seq_;
    int batch_;
    std::vector<std::vector<std::int8_t>> w_;
    std::vector<std::int8_t> x_;
    std::vector<std::int32_t> acc_;
    std::vector<std::int8_t> stageX_;
    std::vector<std::int32_t> stageAcc_;
};

/** One controller-scale projection fused across B concurrent episodes. */
void
BM_IntGemmBatched(benchmark::State& state)
{
    const int B = static_cast<int>(state.range(0));
    GhostBatch gb({{3, 64, 192}}, B);
    for (auto _ : state)
        gb.run();
    // items/s = fused GEMM requests served per second; batching shows up
    // as superlinear items/s versus the B=1 row.
    state.SetItemsProcessed(state.iterations() * B);
}
BENCHMARK(BM_IntGemmBatched)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

/**
 * B concurrent planner inferences, fused per layer: the full GEMM
 * program of one parallel-decode planner forward (2 LLaMA blocks at
 * dim 64 / MLP 192 over 14 tokens + head). The planner prompt is
 * already 14 rows wide, so its fused win is modest by design -- the
 * per-step controller program below is where cross-episode batching
 * pays (see README "Performance engineering").
 */
void
BM_PlannerInferenceBatched(benchmark::State& state)
{
    const int B = static_cast<int>(state.range(0));
    std::vector<GhostBatch::Shape> seq;
    for (int layer = 0; layer < 2; ++layer) {
        for (int p = 0; p < 4; ++p)
            seq.push_back({14, 64, 64}); // Q, K, V, O
        seq.push_back({14, 64, 192});    // gate
        seq.push_back({14, 64, 192});    // up
        seq.push_back({14, 192, 64});    // down
    }
    seq.push_back({14, 64, 26}); // head
    GhostBatch gb(std::move(seq), B);
    for (auto _ : state)
        gb.run();
    state.SetItemsProcessed(state.iterations() * B);
}
BENCHMARK(BM_PlannerInferenceBatched)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/**
 * B concurrent controller steps, fused per layer: the GEMM program of
 * one inferLogits (2 blocks at dim 48 / MLP 144 over 3 tokens + head).
 * Small-m steps dominate episode inference, and their fused win is the
 * headline batching number (>=1.3x per request at B=4 on AVX2+).
 */
void
BM_ControllerStepBatched(benchmark::State& state)
{
    const int B = static_cast<int>(state.range(0));
    std::vector<GhostBatch::Shape> seq;
    for (int layer = 0; layer < 2; ++layer) {
        for (int p = 0; p < 4; ++p)
            seq.push_back({3, 48, 48});
        seq.push_back({3, 48, 144});
        seq.push_back({3, 48, 144});
        seq.push_back({3, 144, 48});
    }
    seq.push_back({3, 48, 9}); // action head
    GhostBatch gb(std::move(seq), B);
    for (auto _ : state)
        gb.run();
    state.SetItemsProcessed(state.iterations() * B);
}
BENCHMARK(BM_ControllerStepBatched)->Arg(1)->Arg(4)->Arg(8);

void
BM_Injection(benchmark::State& state)
{
    const double ber = 1e-4;
    std::vector<std::int32_t> acc(65536, 12345);
    const std::vector<double> rates(kAccumulatorBits, ber);
    Rng rng(1);
    for (auto _ : state) {
        BitFlipInjector::inject(acc.data(), acc.size(), rates, rng);
        benchmark::DoNotOptimize(acc.data());
    }
    state.SetItemsProcessed(state.iterations() * 65536);
}
BENCHMARK(BM_Injection);

void
BM_FaultyLinear(benchmark::State& state)
{
    Rng rng(2);
    Tensor x({16, 64}), w({64, 64});
    for (std::int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.normal());
    for (std::int64_t i = 0; i < w.numel(); ++i)
        w[i] = static_cast<float>(rng.normal()) * 0.2f;
    ComputeContext ctx(2);
    QuantGemmState st;
    ctx.calibrating = true;
    faultyLinear(x, w, nullptr, st, ctx, "bm");
    ctx.calibrating = false;
    ctx.setUniformBer(1e-4);
    for (auto _ : state) {
        auto y = faultyLinear(x, w, nullptr, st, ctx, "bm");
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_FaultyLinear);

void
BM_SystolicTile(benchmark::State& state)
{
    std::vector<std::int8_t> x(128 * 128, 5);
    std::vector<std::int8_t> w(128 * 128, -3);
    SystolicArray arr;
    Rng rng(3);
    for (auto _ : state) {
        auto res = arr.run(x.data(), 128, 128, w.data(), 128, {}, 0.0, rng);
        benchmark::DoNotOptimize(res.acc.data());
    }
}
BENCHMARK(BM_SystolicTile);

void
BM_Hadamard(benchmark::State& state)
{
    for (auto _ : state) {
        auto h = ops::hadamard(64);
        benchmark::DoNotOptimize(h.data());
    }
}
BENCHMARK(BM_Hadamard);

void
BM_ControllerStep(benchmark::State& state)
{
    auto controller = ModelZoo::mineController(false);
    MineWorld w({40, 40, MineTask::Wooden, 1});
    w.setActiveSubtask({SubtaskType::MineLog, 2});
    const MineObs obs = w.observe();
    ComputeContext ctx(4);
    ctx.setUniformBer(1e-4);
    for (auto _ : state) {
        auto logits = controller->inferLogits(
            static_cast<int>(SubtaskType::MineLog), obs.spatial, obs.state,
            ctx);
        benchmark::DoNotOptimize(logits.data());
    }
}
BENCHMARK(BM_ControllerStep);

void
BM_PlannerInference(benchmark::State& state)
{
    auto planner = ModelZoo::minePlanner(false);
    ComputeContext ctx(5);
    ctx.setUniformBer(1e-5);
    for (auto _ : state) {
        auto plan = planner->inferPlan(0, 0, ctx);
        benchmark::DoNotOptimize(plan.data());
    }
}
BENCHMARK(BM_PlannerInference);

void
BM_EvaluateManip(benchmark::State& state)
{
    // The cross-episode parallel path: 32 repetitions of a manipulation
    // task fanned out over N evaluator workers (Arg). On a multi-core
    // host the 4-thread row should run >=2x faster than the serial row;
    // the aggregate TaskStats is bit-identical either way.
    static ManipSystem sys("openvla", "octo", /*verbose=*/false);
    sys.setEvalThreads(static_cast<int>(state.range(0)));
    CreateConfig cfg = CreateConfig::uniform(1e-4);
    cfg.anomalyDetection = true;
    for (auto _ : state) {
        const TaskStats s =
            sys.evaluate(static_cast<int>(ManipTask::Wine), cfg, 32);
        benchmark::DoNotOptimize(&s);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_EvaluateManip)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/**
 * Result-store flush cost vs store size (Arg = records already in the
 * store), json vs binlog. Each iteration publishes one 16-record batch
 * into a synthetic episode store: the json backend rewrites the whole
 * array (O(store) -- its row should scale with Arg), the binlog backend
 * appends 16 CRC-framed records to its log (O(batch) -- its row should
 * stay flat from 1k to 100k). This pair is the perf contract behind the
 * campaign-scale store format.
 */
void
storeFlushBench(benchmark::State& state, StoreFormat format)
{
    const int n = static_cast<int>(state.range(0));
    char dir[] = "/tmp/create-bench-store-XXXXXX";
    if (!mkdtemp(dir)) {
        state.SkipWithError("mkdtemp failed");
        return;
    }
    const std::string path = std::string(dir) + "/store";
    const auto episodeName = [](int i) {
        return "v2|bench|flush|cell" + std::to_string(i % 64) + "#" +
               std::to_string(i / 64);
    };
    const auto makeRecord = [&](int i, double bump) {
        JsonRecord r;
        r.name = episodeName(i);
        r.numbers.emplace_back("seed", static_cast<double>(i));
        r.numbers.emplace_back("success", (i % 3) ? 1.0 : 0.0);
        r.numbers.emplace_back("reward", 0.125 * i + bump);
        r.numbers.emplace_back("wallMs", 17.0 + 0.001 * i);
        r.numbers.emplace_back("flips", static_cast<double>(i % 7));
        return r;
    };
    std::map<std::string, JsonRecord> full;
    for (int i = 0; i < n; ++i) {
        JsonRecord r = makeRecord(i, 0.0);
        std::string name = r.name;
        full.emplace(std::move(name), std::move(r));
    }
    const std::unique_ptr<StoreBackend> be =
        openStoreBackend(path, format, "bench");
    std::string error;
    {
        // Seed flush: the store under test holds all n records on disk.
        std::vector<JsonRecord> all;
        all.reserve(full.size());
        for (const auto& [name, rec] : full)
            all.push_back(rec);
        if (!be->flush(full, all, &error)) {
            state.SkipWithError(error.c_str());
            return;
        }
    }
    int next = 0;
    std::vector<JsonRecord> batch;
    for (auto _ : state) {
        batch.clear();
        for (int k = 0; k < 16; ++k) {
            const int i = (next + k) % n;
            JsonRecord r = makeRecord(i, 1.0 + next);
            full[r.name] = r;
            batch.push_back(std::move(r));
        }
        next = (next + 16) % n;
        if (!be->flush(full, batch, &error)) {
            state.SkipWithError(error.c_str());
            return;
        }
    }
    state.SetItemsProcessed(state.iterations() * 16);
    // Best-effort cleanup of the scratch store (json file or binlog dir).
    if (format == StoreFormat::Json) {
        std::remove(path.c_str());
    } else {
        std::string cmdSafe = path + "/log-bench.crbl";
        std::remove(cmdSafe.c_str());
        std::remove(path.c_str()); // rmdir via remove(3) on the empty dir
    }
    std::remove(dir);
}

void
BM_StoreFlushJson(benchmark::State& state)
{
    storeFlushBench(state, StoreFormat::Json);
}
BENCHMARK(BM_StoreFlushJson)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void
BM_StoreFlushBinlog(benchmark::State& state)
{
    storeFlushBench(state, StoreFormat::Binlog);
}
BENCHMARK(BM_StoreFlushBinlog)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

/**
 * Full coordinator range round trip over loopback: req -> range -> 16
 * episode records + done, against a live poll() coordinator owning a
 * binlog store (every done boundary flushes the pending batch, so the
 * disk append is in the loop). This is the per-range protocol overhead a
 * socket worker pays on top of the episodes themselves; the acceptance
 * bar is < 1 ms per 16-episode range.
 */
void
BM_CoordFrameRoundTrip(benchmark::State& state)
{
    char dir[] = "/tmp/create-bench-coord-XXXXXX";
    if (!mkdtemp(dir)) {
        state.SkipWithError("mkdtemp failed");
        return;
    }
    Coordinator::Options co;
    co.storePath = std::string(dir) + "/store";
    co.storeFormat = StoreFormat::Binlog;
    co.rangeEpisodes = 16;
    co.leaseSeconds = 300.0; // no expiry churn inside the measurement
    Coordinator coord(co);
    std::string error;
    if (!coord.start(&error)) {
        state.SkipWithError(error.c_str());
        return;
    }
    std::thread serve([&] { coord.runLoop(); });
    const auto teardown = [&] {
        coord.stop();
        serve.join();
        const std::string rm = std::string("rm -rf ") + dir;
        if (std::system(rm.c_str()) != 0) {
        } // best-effort scratch cleanup
    };

    CoordClient client;
    const std::string fp = "v2|bench|coordrt|cfg0|s0";
    bool ok = client.connect("127.0.0.1", coord.port(), "bench:0.0", 3,
                             &error);
    if (ok) {
        // A need far beyond what the run consumes: fin never fires, every
        // req yields a full 16-episode range.
        JsonRecord need = coordwire::control("need");
        need.strings.emplace_back("fp", fp);
        need.numbers.emplace_back("need", 1 << 20);
        ok = client.send(need, &error);
    }
    if (!ok) {
        teardown();
        state.SkipWithError(error.c_str());
        return;
    }

    for (auto _ : state) {
        JsonRecord rec;
        std::string verb;
        if (!client.send(coordwire::control("req"), &error) ||
            !client.recv(rec, &error)) {
            teardown();
            state.SkipWithError(error.c_str());
            return;
        }
        if (!coordwire::isControl(rec, &verb) || verb != "range") {
            teardown();
            state.SkipWithError("expected a range record");
            return;
        }
        const int start = static_cast<int>(rec.number("start"));
        const int count = static_cast<int>(rec.number("count"));
        std::vector<JsonRecord> batch;
        batch.reserve(static_cast<std::size_t>(count) + 1);
        for (int i = 0; i < count; ++i) {
            JsonRecord ep;
            ep.name = sweepEpisodeKey(fp, start + i);
            ep.numbers.emplace_back("seed",
                                    static_cast<double>(start + i));
            ep.numbers.emplace_back("success", (i % 3) ? 1.0 : 0.0);
            ep.numbers.emplace_back("reward", 0.125 * (start + i));
            batch.push_back(std::move(ep));
        }
        JsonRecord done = coordwire::control("done");
        done.strings.emplace_back("fp", fp);
        done.numbers.emplace_back("start", start);
        done.numbers.emplace_back("count", count);
        batch.push_back(std::move(done));
        if (!client.send(batch, &error)) {
            teardown();
            state.SkipWithError(error.c_str());
            return;
        }
    }
    state.SetItemsProcessed(state.iterations() * 16);
    client.close();
    teardown();
}
BENCHMARK(BM_CoordFrameRoundTrip)
    ->Iterations(512)
    ->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char** argv)
{
    // Translate `--json <path>` (the repo-wide bench flag) into
    // google-benchmark's JSON reporter arguments.
    std::vector<char*> args(argv, argv + argc);
    std::string outFlag;
    std::string fmtFlag;
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string arg = args[i];
        // Accept both "--json path" and "--json=path", like common/cli.hpp.
        if (arg == "--json" && i + 1 < args.size()) {
            outFlag = std::string("--benchmark_out=") + args[i + 1];
            fmtFlag = "--benchmark_out_format=json";
            args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                       args.begin() + static_cast<std::ptrdiff_t>(i + 2));
            break;
        }
        if (arg.rfind("--json=", 0) == 0) {
            outFlag = "--benchmark_out=" + arg.substr(7);
            fmtFlag = "--benchmark_out_format=json";
            args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
            break;
        }
    }
    if (!outFlag.empty()) {
        args.push_back(outFlag.data());
        args.push_back(fmtFlag.data());
    }
    int argcAdj = static_cast<int>(args.size());
    benchmark::Initialize(&argcAdj, args.data());
    if (benchmark::ReportUnrecognizedArguments(argcAdj, args.data()))
        return 1;
    // Which SIMD tier the dispatcher picked (and what else it could
    // have picked): perf numbers are meaningless without this.
    benchmark::AddCustomContext("create_simd", simd::report());
    // Our own build-type stamp. The "library_build_type" context key
    // reports how the *benchmark library* was compiled (Debian ships a
    // debug libbenchmark), not how this code was; the perf gate keys on
    // create_build_type (see tools/bench_gate.cpp).
#ifdef NDEBUG
    benchmark::AddCustomContext("create_build_type", "release");
#else
    benchmark::AddCustomContext("create_build_type", "debug");
#endif
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
