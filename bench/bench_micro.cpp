/**
 * @file
 * Google-benchmark microbenchmarks for the hot substrate paths: integer
 * GEMM, fault injection, the full faulty pipeline, the systolic model,
 * Hadamard rotation, single model inferences, and the episode evaluation
 * engine (serial vs parallel fan-out).
 *
 * `--json <path>` writes the per-benchmark latency records (including the
 * per-kernel and per-inference timings) as JSON -- the machine-readable
 * perf trajectory tracked in BENCH_micro.json at the repo root and
 * uploaded by the CI perf-smoke job. It expands to google-benchmark's
 * JSON reporter flags, so it composes with --benchmark_filter and
 * --benchmark_min_time.
 */

#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/manip_system.hpp"
#include "fault/injector.hpp"
#include "hw/faulty_gemm.hpp"
#include "hw/systolic.hpp"
#include "models/model_zoo.hpp"
#include "tensor/ops.hpp"

using namespace create;

namespace {

void
BM_IntGemm(benchmark::State& state)
{
    const auto n = static_cast<std::int64_t>(state.range(0));
    std::vector<std::int8_t> x(static_cast<std::size_t>(n * n), 3);
    std::vector<std::int8_t> w(static_cast<std::size_t>(n * n), -2);
    std::vector<std::int32_t> acc(static_cast<std::size_t>(n * n));
    for (auto _ : state) {
        std::fill(acc.begin(), acc.end(), 0);
        intGemm(x.data(), n, n, w.data(), n, acc.data());
        benchmark::DoNotOptimize(acc.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_IntGemm)->Arg(32)->Arg(64)->Arg(128);

void
BM_Injection(benchmark::State& state)
{
    const double ber = 1e-4;
    std::vector<std::int32_t> acc(65536, 12345);
    const std::vector<double> rates(kAccumulatorBits, ber);
    Rng rng(1);
    for (auto _ : state) {
        BitFlipInjector::inject(acc.data(), acc.size(), rates, rng);
        benchmark::DoNotOptimize(acc.data());
    }
    state.SetItemsProcessed(state.iterations() * 65536);
}
BENCHMARK(BM_Injection);

void
BM_FaultyLinear(benchmark::State& state)
{
    Rng rng(2);
    Tensor x({16, 64}), w({64, 64});
    for (std::int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.normal());
    for (std::int64_t i = 0; i < w.numel(); ++i)
        w[i] = static_cast<float>(rng.normal()) * 0.2f;
    ComputeContext ctx(2);
    QuantGemmState st;
    ctx.calibrating = true;
    faultyLinear(x, w, nullptr, st, ctx, "bm");
    ctx.calibrating = false;
    ctx.setUniformBer(1e-4);
    for (auto _ : state) {
        auto y = faultyLinear(x, w, nullptr, st, ctx, "bm");
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_FaultyLinear);

void
BM_SystolicTile(benchmark::State& state)
{
    std::vector<std::int8_t> x(128 * 128, 5);
    std::vector<std::int8_t> w(128 * 128, -3);
    SystolicArray arr;
    Rng rng(3);
    for (auto _ : state) {
        auto res = arr.run(x.data(), 128, 128, w.data(), 128, {}, 0.0, rng);
        benchmark::DoNotOptimize(res.acc.data());
    }
}
BENCHMARK(BM_SystolicTile);

void
BM_Hadamard(benchmark::State& state)
{
    for (auto _ : state) {
        auto h = ops::hadamard(64);
        benchmark::DoNotOptimize(h.data());
    }
}
BENCHMARK(BM_Hadamard);

void
BM_ControllerStep(benchmark::State& state)
{
    auto controller = ModelZoo::mineController(false);
    MineWorld w({40, 40, MineTask::Wooden, 1});
    w.setActiveSubtask({SubtaskType::MineLog, 2});
    const MineObs obs = w.observe();
    ComputeContext ctx(4);
    ctx.setUniformBer(1e-4);
    for (auto _ : state) {
        auto logits = controller->inferLogits(
            static_cast<int>(SubtaskType::MineLog), obs.spatial, obs.state,
            ctx);
        benchmark::DoNotOptimize(logits.data());
    }
}
BENCHMARK(BM_ControllerStep);

void
BM_PlannerInference(benchmark::State& state)
{
    auto planner = ModelZoo::minePlanner(false);
    ComputeContext ctx(5);
    ctx.setUniformBer(1e-5);
    for (auto _ : state) {
        auto plan = planner->inferPlan(0, 0, ctx);
        benchmark::DoNotOptimize(plan.data());
    }
}
BENCHMARK(BM_PlannerInference);

void
BM_EvaluateManip(benchmark::State& state)
{
    // The cross-episode parallel path: 32 repetitions of a manipulation
    // task fanned out over N evaluator workers (Arg). On a multi-core
    // host the 4-thread row should run >=2x faster than the serial row;
    // the aggregate TaskStats is bit-identical either way.
    static ManipSystem sys("openvla", "octo", /*verbose=*/false);
    sys.setEvalThreads(static_cast<int>(state.range(0)));
    CreateConfig cfg = CreateConfig::uniform(1e-4);
    cfg.anomalyDetection = true;
    for (auto _ : state) {
        const TaskStats s =
            sys.evaluate(static_cast<int>(ManipTask::Wine), cfg, 32);
        benchmark::DoNotOptimize(&s);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_EvaluateManip)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char** argv)
{
    // Translate `--json <path>` (the repo-wide bench flag) into
    // google-benchmark's JSON reporter arguments.
    std::vector<char*> args(argv, argv + argc);
    std::string outFlag;
    std::string fmtFlag;
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string arg = args[i];
        // Accept both "--json path" and "--json=path", like common/cli.hpp.
        if (arg == "--json" && i + 1 < args.size()) {
            outFlag = std::string("--benchmark_out=") + args[i + 1];
            fmtFlag = "--benchmark_out_format=json";
            args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                       args.begin() + static_cast<std::ptrdiff_t>(i + 2));
            break;
        }
        if (arg.rfind("--json=", 0) == 0) {
            outFlag = "--benchmark_out=" + arg.substr(7);
            fmtFlag = "--benchmark_out_format=json";
            args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
            break;
        }
    }
    if (!outFlag.empty()) {
        args.push_back(outFlag.data());
        args.push_back(fmtFlag.data());
    }
    int argcAdj = static_cast<int>(args.size());
    benchmark::Initialize(&argcAdj, args.data());
    if (benchmark::ReportUnrecognizedArguments(argcAdj, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
