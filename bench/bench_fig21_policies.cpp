/**
 * @file
 * Fig. 21 + the Sec. 6.5 policy search: the entropy-to-voltage mappings.
 * Prints the A-F preset tables and runs a random search over candidate
 * policies (paper: 100 candidates), reporting the Pareto frontier of
 * (success rate, effective voltage). Candidates are generated first and
 * the whole search is declared as one SweepRunner campaign, so a large
 * --candidates run shards across --threads (or --shard i/N processes)
 * and resumes with --out at episode granularity.
 */

#include "bench_util.hpp"

using namespace create;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const auto opt =
        bench::setupSweep(cli, "Fig. 21 entropy-to-voltage policies", 6,
                          "  --task NAME      Minecraft task (default wooden)\n"
                          "  --candidates N   policy candidates to score "
                          "(default 16)\n");
    const int reps = opt.reps;
    const int candidates = static_cast<int>(cli.integer("candidates", 16));
    const MineTask task = mineTaskByName(cli.str("task", "wooden"));

    Table m("Fig. 21: preset policies A-F (voltage per normalized-entropy "
            "bucket)");
    m.header({"policy", "critical (H<=0.04)", "focused (<=0.12)",
              "routine (<=0.30)", "free (>0.30)"});
    for (const auto& p : EntropyVoltagePolicy::presets()) {
        m.row({p.name(), Table::num(p.voltages()[0], 2),
               Table::num(p.voltages()[1], 2), Table::num(p.voltages()[2], 2),
               Table::num(p.voltages()[3], 2)});
    }
    m.print();

    // Policy search: random candidates + the presets, evaluated with AD on.
    SweepRunner sweep(bench::sweepOptions(opt));
    auto policyCell = [&](const EntropyVoltagePolicy& p,
                          const std::string& label) {
        CreateConfig cfg = CreateConfig::atVoltage(0.90, 0.90);
        cfg.injectPlanner = false;
        cfg.anomalyDetection = true;
        cfg.voltageScaling = true;
        cfg.policy = p;
        return sweep.add({"jarvis-1", static_cast<int>(task), cfg, reps,
                          EmbodiedSystem::kDefaultSeed0, label});
    };
    struct Scored
    {
        std::string name;
        std::size_t h;
    };
    std::vector<Scored> declared;
    for (const auto& p : EntropyVoltagePolicy::presets())
        declared.push_back({"preset " + p.name(), policyCell(p, p.name())});
    Rng rng(0xCADD1);
    for (int i = 0; i < candidates; ++i) {
        const auto p = EntropyVoltagePolicy::random(rng, i);
        declared.push_back({p.name(), policyCell(p, p.name())});
    }

    sweep.run();

    Table s("Sec. 6.5 policy search (candidates + presets, AD on)");
    s.header({"policy", "success", "effective V", "energy (J)"});
    struct Result
    {
        std::string name;
        TaskStats stats;
    };
    std::vector<Result> scored;
    for (const auto& d : declared)
        scored.push_back({d.name, sweep.stats(d.h)});
    for (const auto& sc : scored) {
        s.row({sc.name, Table::pct(sc.stats.successRate),
               Table::num(sc.stats.avgControllerEffV, 3),
               Table::num(sc.stats.avgComputeJ, 2)});
    }
    s.print();

    // Pareto frontier: highest success at each effective-voltage level.
    Table pareto("Pareto frontier (success vs effective voltage)");
    pareto.header({"policy", "success", "effective V"});
    for (const auto& sc : scored) {
        bool dominated = false;
        for (const auto& other : scored) {
            if (other.stats.successRate >= sc.stats.successRate &&
                other.stats.avgControllerEffV <
                    sc.stats.avgControllerEffV - 1e-9 &&
                (other.stats.successRate > sc.stats.successRate ||
                 other.stats.avgControllerEffV <
                     sc.stats.avgControllerEffV)) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            pareto.row({sc.name, Table::pct(sc.stats.successRate),
                        Table::num(sc.stats.avgControllerEffV, 3)});
    }
    pareto.print();
    std::printf("\nShape check vs paper: adaptive policies dominate "
                "constant-voltage operation; a policy near preset C/D "
                "reduces effective voltage ~7-11%% at iso success.\n");
    return 0;
}
