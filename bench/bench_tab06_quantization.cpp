/**
 * @file
 * Table 6: INT8 vs INT4 under AD+WR (Sec. 6.9). More aggressive
 * quantization compresses the undetected-error range below the AD
 * threshold, so robustness under injection stays comparable even though
 * the error-free baseline pays more quantization noise.
 */

#include "bench_util.hpp"

using namespace create;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const auto opt =
        bench::setup(cli, "Table 6 INT8 vs INT4 with AD+WR", 8,
                     "  --task NAME  Minecraft task (default stone)\n");
    const int reps = opt.reps;
    CreateSystem sys(false);
    sys.setEvalThreads(opt.threads);
    const MineTask task = mineTaskByName(cli.str("task", "stone"));

    Table t("Table 6: success rate on stone with AD+WR (planner injection)");
    t.header({"BER", "INT8", "INT4"});
    for (double ber : {1e-4, 1e-3, 3e-3, 1e-2}) {
        std::vector<std::string> row = {bench::berStr(ber)};
        for (QuantBits bits : {QuantBits::Int8, QuantBits::Int4}) {
            CreateConfig cfg = CreateConfig::uniform(ber);
            cfg.injectController = false;
            cfg.anomalyDetection = true;
            cfg.weightRotation = true;
            cfg.bits = bits;
            row.push_back(Table::pct(sys.evaluate(task, cfg, reps).successRate));
        }
        t.row(row);
    }
    t.print();
    std::printf("\nShape check vs paper (Table 6): INT4 tracks INT8 at "
                "low-to-moderate BER thanks to AD+WR's compressed "
                "undetected-error range; at the highest BERs this small "
                "substrate shows an INT4 penalty that the paper's "
                "7B-scale models absorb (they report statistical "
                "parity).\n");
    return 0;
}
