/**
 * @file
 * Fig. 13: per-technique evaluation and the ablations.
 *  (a) AD on the planner, (b) AD on the controller, (c) WR on the planner,
 *  (d) VS policies vs constant voltage, (e) AD+WR ablation,
 *  (f) AD+VS ablation (effective-voltage shift).
 */

#include "bench_util.hpp"

using namespace create;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const auto opt =
        bench::setup(cli, "Fig. 13 CREATE techniques", 12,
                     "  --task NAME  Minecraft task (default wooden)\n");
    const int reps = opt.reps;
    CreateSystem sys(false);
    sys.setEvalThreads(opt.threads);
    const MineTask task = mineTaskByName(cli.str("task", "wooden"));

    // (a) AD on planner.
    {
        Table t("Fig. 13(a): anomaly detection on the planner");
        t.header({"BER", "no AD success", "no AD steps", "AD success",
                  "AD steps"});
        for (double ber : {1e-4, 3e-4, 1e-3}) {
            CreateConfig base = CreateConfig::uniform(ber);
            base.injectController = false;
            CreateConfig ad = base;
            ad.anomalyDetection = true;
            const auto s0 = sys.evaluate(task, base, reps);
            const auto s1 = sys.evaluate(task, ad, reps);
            t.row({bench::berStr(ber), Table::pct(s0.successRate),
                   Table::num(s0.avgStepsSuccess, 0),
                   Table::pct(s1.successRate),
                   Table::num(s1.avgStepsSuccess, 0)});
        }
        t.print();
    }

    // (b) AD on controller.
    {
        Table t("Fig. 13(b): anomaly detection on the controller");
        t.header({"BER", "no AD success", "no AD steps", "AD success",
                  "AD steps"});
        for (double ber : {1e-3, 5e-3, 1e-2}) {
            CreateConfig base = CreateConfig::uniform(ber);
            base.injectPlanner = false;
            CreateConfig ad = base;
            ad.anomalyDetection = true;
            const auto s0 = sys.evaluate(task, base, reps);
            const auto s1 = sys.evaluate(task, ad, reps);
            t.row({bench::berStr(ber), Table::pct(s0.successRate),
                   Table::num(s0.avgStepsSuccess, 0),
                   Table::pct(s1.successRate),
                   Table::num(s1.avgStepsSuccess, 0)});
        }
        t.print();
    }

    // (c) WR on planner (without AD).
    {
        Table t("Fig. 13(c): weight rotation on the planner");
        t.header({"BER", "no WR success", "no WR steps", "WR success",
                  "WR steps"});
        for (double ber : {1e-4, 3e-4, 1e-3}) {
            CreateConfig base = CreateConfig::uniform(ber);
            base.injectController = false;
            CreateConfig wr = base;
            wr.weightRotation = true;
            const auto s0 = sys.evaluate(task, base, reps);
            const auto s1 = sys.evaluate(task, wr, reps);
            t.row({bench::berStr(ber), Table::pct(s0.successRate),
                   Table::num(s0.avgStepsSuccess, 0),
                   Table::pct(s1.successRate),
                   Table::num(s1.avgStepsSuccess, 0)});
        }
        t.print();
    }

    // (d) VS policies vs constant voltage (controller-only, no AD).
    {
        Table t("Fig. 13(d): adaptive voltage scaling vs constant voltage "
                "(controller)");
        t.header({"policy", "success", "effective V", "energy (J)"});
        for (double v : {0.90, 0.80, 0.75, 0.72, 0.70, 0.67}) {
            CreateConfig cfg = CreateConfig::atVoltage(0.90, v);
            cfg.injectPlanner = false;
            const auto s = sys.evaluate(task, cfg, reps);
            t.row({"const " + Table::num(v, 2), Table::pct(s.successRate),
                   Table::num(s.avgControllerEffV, 3),
                   Table::num(s.avgComputeJ, 2)});
        }
        for (char p : {'A', 'B', 'C', 'D', 'E', 'F'}) {
            CreateConfig cfg = CreateConfig::atVoltage(0.90, 0.90);
            cfg.injectPlanner = false;
            cfg.voltageScaling = true;
            cfg.policy = EntropyVoltagePolicy::preset(p);
            const auto s = sys.evaluate(task, cfg, reps);
            t.row({std::string("policy ") + p, Table::pct(s.successRate),
                   Table::num(s.avgControllerEffV, 3),
                   Table::num(s.avgComputeJ, 2)});
        }
        t.print();
    }

    // (e) Ablation on the planner: none / AD / WR / AD+WR.
    {
        Table t("Fig. 13(e): planner ablation (AD x WR)");
        t.header({"config", "success @1e-3", "success @3e-3",
                  "success @1e-2"});
        const struct
        {
            const char* name;
            bool ad, wr;
        } rows[] = {{"no protection", false, false},
                    {"AD only", true, false},
                    {"WR only", false, true},
                    {"AD + WR", true, true}};
        for (const auto& r : rows) {
            std::vector<std::string> cells = {r.name};
            for (double ber : {1e-3, 3e-3, 1e-2}) {
                CreateConfig cfg = CreateConfig::uniform(ber);
                cfg.injectController = false;
                cfg.anomalyDetection = r.ad;
                cfg.weightRotation = r.wr;
                cells.push_back(
                    Table::pct(sys.evaluate(task, cfg, reps).successRate));
            }
            t.row(cells);
        }
        t.print();
    }

    // (f) Ablation on the controller: VS with and without AD.
    {
        Table t("Fig. 13(f): controller ablation (AD x VS), policies E-F "
                "plus deeper-undervolting policies G/H");
        t.header({"policy", "no AD success", "no AD eff V", "AD success",
                  "AD eff V"});
        const std::vector<double> th = {0.04, 0.12, 0.30};
        std::vector<EntropyVoltagePolicy> policies = {
            EntropyVoltagePolicy::preset('E'),
            EntropyVoltagePolicy::preset('F'),
            // AD unlocks these deeper floors (Sec. 6.6: the AD x VS
            // synergy shifts the frontier left).
            EntropyVoltagePolicy(th, {0.76, 0.70, 0.65, 0.62}, "G"),
            EntropyVoltagePolicy(th, {0.72, 0.67, 0.62, 0.60}, "H"),
        };
        for (const auto& p : policies) {
            CreateConfig vs = CreateConfig::atVoltage(0.90, 0.90);
            vs.injectPlanner = false;
            vs.voltageScaling = true;
            vs.policy = p;
            CreateConfig vsAd = vs;
            vsAd.anomalyDetection = true;
            const auto s0 = sys.evaluate(task, vs, reps);
            const auto s1 = sys.evaluate(task, vsAd, reps);
            t.row({p.name(), Table::pct(s0.successRate),
                   Table::num(s0.avgControllerEffV, 3),
                   Table::pct(s1.successRate),
                   Table::num(s1.avgControllerEffV, 3)});
        }
        t.print();
    }
    std::printf("\nShape check vs paper: AD recovers most of the loss, WR "
                "extends the planner further, AD+WR is synergistic, and "
                "with AD the aggressive policies keep their success rate "
                "at a lower effective voltage.\n");
    return 0;
}
