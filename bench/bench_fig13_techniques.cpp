/**
 * @file
 * Fig. 13: per-technique evaluation and the ablations.
 *  (a) AD on the planner, (b) AD on the controller, (c) WR on the planner,
 *  (d) VS policies vs constant voltage, (e) AD+WR ablation,
 *  (f) AD+VS ablation (effective-voltage shift).
 *
 * The sweep matrix is declared up front on the SweepRunner campaign
 * engine (cells shard across --threads workers and --shard i/N processes,
 * duplicates are memoized, --out/--resume checkpoint long campaigns at
 * episode granularity); the tables render from the cell handles
 * afterwards. CI runs this driver's matrix 2-sharded into one store and
 * sweep-diffs it against a serial run.
 */

#include "bench_util.hpp"

using namespace create;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const auto opt =
        bench::setupSweep(cli, "Fig. 13 CREATE techniques", 12,
                          "  --task NAME  Minecraft task (default wooden)\n");
    const int reps = opt.reps;
    const MineTask task = mineTaskByName(cli.str("task", "wooden"));

    SweepRunner sweep(bench::sweepOptions(opt));
    auto cell = [&](const CreateConfig& cfg, std::string label) {
        return sweep.add({"jarvis-1", static_cast<int>(task), cfg, reps,
                          EmbodiedSystem::kDefaultSeed0, std::move(label)});
    };

    // --- declare the sweep matrix ---------------------------------------

    // (a) AD on planner / (c) WR on planner share the planner-only base.
    struct PlannerRow
    {
        double ber;
        std::size_t base, ad, wr;
    };
    std::vector<PlannerRow> plannerRows;
    for (double ber : {1e-4, 3e-4, 1e-3}) {
        CreateConfig base = CreateConfig::uniform(ber);
        base.injectController = false;
        CreateConfig ad = base;
        ad.anomalyDetection = true;
        CreateConfig wr = base;
        wr.weightRotation = true;
        plannerRows.push_back({ber, cell(base, "a/base@" + bench::berStr(ber)),
                               cell(ad, "a/AD@" + bench::berStr(ber)),
                               cell(wr, "c/WR@" + bench::berStr(ber))});
    }

    // (b) AD on controller.
    struct ControllerRow
    {
        double ber;
        std::size_t base, ad;
    };
    std::vector<ControllerRow> controllerRows;
    for (double ber : {1e-3, 5e-3, 1e-2}) {
        CreateConfig base = CreateConfig::uniform(ber);
        base.injectPlanner = false;
        CreateConfig ad = base;
        ad.anomalyDetection = true;
        controllerRows.push_back({ber,
                                  cell(base, "b/base@" + bench::berStr(ber)),
                                  cell(ad, "b/AD@" + bench::berStr(ber))});
    }

    // (d) VS policies vs constant voltage (controller-only, no AD).
    struct PolicyRow
    {
        std::string name;
        std::size_t h;
    };
    std::vector<PolicyRow> constRows, policyRows;
    for (double v : {0.90, 0.80, 0.75, 0.72, 0.70, 0.67}) {
        CreateConfig cfg = CreateConfig::atVoltage(0.90, v);
        cfg.injectPlanner = false;
        constRows.push_back(
            {"const " + Table::num(v, 2), cell(cfg, "d/const" + Table::num(v, 2))});
    }
    for (char p : {'A', 'B', 'C', 'D', 'E', 'F'}) {
        CreateConfig cfg = CreateConfig::atVoltage(0.90, 0.90);
        cfg.injectPlanner = false;
        cfg.voltageScaling = true;
        cfg.policy = EntropyVoltagePolicy::preset(p);
        policyRows.push_back(
            {std::string("policy ") + p, cell(cfg, std::string("d/policy") + p)});
    }

    // (e) Ablation on the planner: none / AD / WR / AD+WR.
    struct AblationRow
    {
        const char* name;
        std::vector<std::size_t> h;
    };
    const struct
    {
        const char* name;
        bool ad, wr;
    } ablations[] = {{"no protection", false, false},
                     {"AD only", true, false},
                     {"WR only", false, true},
                     {"AD + WR", true, true}};
    std::vector<AblationRow> ablationRows;
    for (const auto& r : ablations) {
        AblationRow row{r.name, {}};
        for (double ber : {1e-3, 3e-3, 1e-2}) {
            CreateConfig cfg = CreateConfig::uniform(ber);
            cfg.injectController = false;
            cfg.anomalyDetection = r.ad;
            cfg.weightRotation = r.wr;
            row.h.push_back(cell(cfg, std::string("e/") + r.name + "@" +
                                          bench::berStr(ber)));
        }
        ablationRows.push_back(std::move(row));
    }

    // (f) Ablation on the controller: VS with and without AD.
    const std::vector<double> th = {0.04, 0.12, 0.30};
    std::vector<EntropyVoltagePolicy> policies = {
        EntropyVoltagePolicy::preset('E'),
        EntropyVoltagePolicy::preset('F'),
        // AD unlocks these deeper floors (Sec. 6.6: the AD x VS
        // synergy shifts the frontier left).
        EntropyVoltagePolicy(th, {0.76, 0.70, 0.65, 0.62}, "G"),
        EntropyVoltagePolicy(th, {0.72, 0.67, 0.62, 0.60}, "H"),
    };
    struct VsRow
    {
        std::string name;
        std::size_t vs, vsAd;
    };
    std::vector<VsRow> vsRows;
    for (const auto& p : policies) {
        CreateConfig vs = CreateConfig::atVoltage(0.90, 0.90);
        vs.injectPlanner = false;
        vs.voltageScaling = true;
        vs.policy = p;
        CreateConfig vsAd = vs;
        vsAd.anomalyDetection = true;
        vsRows.push_back({p.name(), cell(vs, "f/VS-" + p.name()),
                          cell(vsAd, "f/AD+VS-" + p.name())});
    }

    sweep.run();

    // --- render ----------------------------------------------------------
    {
        Table t("Fig. 13(a): anomaly detection on the planner");
        t.header({"BER", "no AD success", "no AD steps", "AD success",
                  "AD steps"});
        for (const auto& r : plannerRows) {
            const auto& s0 = sweep.stats(r.base);
            const auto& s1 = sweep.stats(r.ad);
            t.row({bench::berStr(r.ber), Table::pct(s0.successRate),
                   Table::num(s0.avgStepsSuccess, 0),
                   Table::pct(s1.successRate),
                   Table::num(s1.avgStepsSuccess, 0)});
        }
        t.print();
    }
    {
        Table t("Fig. 13(b): anomaly detection on the controller");
        t.header({"BER", "no AD success", "no AD steps", "AD success",
                  "AD steps"});
        for (const auto& r : controllerRows) {
            const auto& s0 = sweep.stats(r.base);
            const auto& s1 = sweep.stats(r.ad);
            t.row({bench::berStr(r.ber), Table::pct(s0.successRate),
                   Table::num(s0.avgStepsSuccess, 0),
                   Table::pct(s1.successRate),
                   Table::num(s1.avgStepsSuccess, 0)});
        }
        t.print();
    }
    {
        Table t("Fig. 13(c): weight rotation on the planner");
        t.header({"BER", "no WR success", "no WR steps", "WR success",
                  "WR steps"});
        for (const auto& r : plannerRows) {
            const auto& s0 = sweep.stats(r.base);
            const auto& s1 = sweep.stats(r.wr);
            t.row({bench::berStr(r.ber), Table::pct(s0.successRate),
                   Table::num(s0.avgStepsSuccess, 0),
                   Table::pct(s1.successRate),
                   Table::num(s1.avgStepsSuccess, 0)});
        }
        t.print();
    }
    {
        Table t("Fig. 13(d): adaptive voltage scaling vs constant voltage "
                "(controller)");
        t.header({"policy", "success", "effective V", "energy (J)"});
        for (const auto& rows : {&constRows, &policyRows})
            for (const auto& r : *rows) {
                const auto& s = sweep.stats(r.h);
                t.row({r.name, Table::pct(s.successRate),
                       Table::num(s.avgControllerEffV, 3),
                       Table::num(s.avgComputeJ, 2)});
            }
        t.print();
    }
    {
        Table t("Fig. 13(e): planner ablation (AD x WR)");
        t.header({"config", "success @1e-3", "success @3e-3",
                  "success @1e-2"});
        for (const auto& r : ablationRows) {
            std::vector<std::string> cells = {r.name};
            for (const std::size_t h : r.h)
                cells.push_back(Table::pct(sweep.stats(h).successRate));
            t.row(cells);
        }
        t.print();
    }
    {
        Table t("Fig. 13(f): controller ablation (AD x VS), policies E-F "
                "plus deeper-undervolting policies G/H");
        t.header({"policy", "no AD success", "no AD eff V", "AD success",
                  "AD eff V"});
        for (const auto& r : vsRows) {
            const auto& s0 = sweep.stats(r.vs);
            const auto& s1 = sweep.stats(r.vsAd);
            t.row({r.name, Table::pct(s0.successRate),
                   Table::num(s0.avgControllerEffV, 3),
                   Table::pct(s1.successRate),
                   Table::num(s1.avgControllerEffV, 3)});
        }
        t.print();
    }
    std::printf("\nShape check vs paper: AD recovers most of the loss, WR "
                "extends the planner further, AD+WR is synergistic, and "
                "with AD the aggressive policies keep their success rate "
                "at a lower effective voltage.\n");
    return 0;
}
