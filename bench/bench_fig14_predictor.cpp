/**
 * @file
 * Fig. 14: entropy-predictor accuracy. (a) correlation / R^2 between
 * predicted and actual entropy on held-out frames; (b) a real-time trace
 * of predicted vs actual entropy and the resulting LDO voltage.
 */

#include <cmath>

#include "bench_util.hpp"
#include "models/model_zoo.hpp"
#include "tensor/ops.hpp"

using namespace create;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    bench::setupAnalytic(cli, "Fig. 14 entropy predictor accuracy");
    auto controller = ModelZoo::mineController(false);
    auto predictor = ModelZoo::minePredictor(*controller, false);

    // (a) Held-out correlation.
    {
        const auto frames =
            ModelZoo::minePredictorFrames(*controller, 1, 20260609);
        ComputeContext ctx(3);
        double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0, mse = 0;
        const auto n = static_cast<double>(frames.size());
        for (const auto& f : frames) {
            const double p = predictor->infer(f.image, f.prompt, ctx);
            const double t = f.entropy;
            sx += p;
            sy += t;
            sxx += p * p;
            syy += t * t;
            sxy += p * t;
            mse += (p - t) * (p - t);
        }
        const double cov = sxy / n - (sx / n) * (sy / n);
        const double vx = sxx / n - (sx / n) * (sx / n);
        const double vy = syy / n - (sy / n) * (sy / n);
        const double r = cov / std::sqrt(std::max(vx * vy, 1e-12));
        Table t("Fig. 14(a): predicted vs actual entropy (held-out frames)");
        t.header({"metric", "value", "paper"});
        t.row({"frames", Table::num(n, 0), "250,000 (training corpus)"});
        t.row({"MSE", Table::num(mse / n, 4), "9.96e-2"});
        t.row({"correlation r", Table::num(r, 3), "~0.96"});
        t.row({"R^2", Table::num(r * r, 3), "0.92"});
        t.print();
    }

    // (b) Real-time tracking + voltage decisions.
    {
        ComputeContext cctx(4), pctx(5);
        Rng rng(4);
        const auto policy = EntropyVoltagePolicy::preset('C');
        DigitalLdo ldo;
        MineWorld w({40, 40, MineTask::Stone, 777});
        const auto pcfg = predictor->config();
        const double maxH = std::log(static_cast<double>(kNumActions));
        Table t("Fig. 14(b): real-time entropy prediction -> LDO voltage "
                "(stone, first subtask)");
        t.header({"step", "actual H", "predicted H", "voltage (V)"});
        w.setActiveSubtask(goldPlan(MineTask::Stone).front());
        for (int s = 0; s < 120 && !w.subtaskComplete(); ++s) {
            const MineObs obs = w.observe();
            const auto logits = controller->inferLogits(
                static_cast<int>(w.activeSubtask().type), obs.spatial,
                obs.state, cctx);
            const double actual = ops::entropy(ops::softmax(logits));
            const auto prompt = predictorPrompt(
                static_cast<int>(w.activeSubtask().type), kNumSubtaskTypes,
                obs.spatial, obs.state, pcfg.promptDim);
            const double pred = predictor->infer(
                w.renderImage(pcfg.imgRes, pcfg.viewRadius), prompt, pctx);
            if (s % 5 == 0) {
                ldo.set(policy.voltageFor(
                    std::min(1.0, std::max(0.0, pred / maxH))));
                t.row({std::to_string(s), Table::num(actual, 3),
                       Table::num(pred, 3), Table::num(ldo.vout(), 2)});
            }
            w.step(static_cast<Action>(sampleAction(logits, rng)));
        }
        t.print();
    }
    std::printf("\nShape check vs paper: predictions track actual entropy "
                "closely enough to drive per-interval voltage choices.\n");
    return 0;
}
