/**
 * @file
 * Fig. 19: validity of the uniform error model. The characterization used
 * a uniform bit-flip model; the evaluation used the voltage-derived,
 * bit-position-skewed model. This bench matches them at equal mean BER
 * and shows the success-rate trends coincide.
 */

#include <cmath>

#include "bench_util.hpp"

using namespace create;

namespace {

/** Voltage whose timing-model BER is closest to the target. */
double
voltageForBer(double ber)
{
    double best = 0.9, bestErr = 1e9;
    for (double v = 0.90; v >= 0.60; v -= 0.005) {
        const double e = std::fabs(
            std::log10(TimingErrorModel::berAtVoltage(v)) - std::log10(ber));
        if (e < bestErr) {
            bestErr = e;
            best = v;
        }
    }
    return best;
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const auto opt =
        bench::setup(cli, "Fig. 19 uniform vs hardware-specific error model", 10,
                     "  --task NAME  Minecraft task (default wooden)\n");
    const int reps = opt.reps;
    CreateSystem sys(false);
    sys.setEvalThreads(opt.threads);
    const MineTask task = mineTaskByName(cli.str("task", "wooden"));

    for (const bool plannerSide : {true, false}) {
        Table t(plannerSide
                    ? std::string("Fig. 19(a): planner, uniform vs "
                                  "voltage-derived model (wooden)")
                    : std::string("Fig. 19(b): controller, uniform vs "
                                  "voltage-derived model (wooden)"));
        t.header({"mean BER", "matched voltage", "uniform success",
                  "hardware-model success"});
        const std::vector<double> bers =
            plannerSide ? std::vector<double>{1e-5, 1e-4, 3e-4, 1e-3}
                        : std::vector<double>{1e-4, 1e-3, 3e-3, 1e-2};
        for (double ber : bers) {
            CreateConfig uni = CreateConfig::uniform(ber);
            uni.injectPlanner = plannerSide;
            uni.injectController = !plannerSide;
            const double v = voltageForBer(ber);
            CreateConfig hw = CreateConfig::atVoltage(
                plannerSide ? v : 0.90, plannerSide ? 0.90 : v);
            hw.injectPlanner = plannerSide;
            hw.injectController = !plannerSide;
            const auto su = sys.evaluate(task, uni, reps);
            const auto sh = sys.evaluate(task, hw, reps);
            t.row({bench::berStr(ber), Table::num(v, 3),
                   Table::pct(su.successRate), Table::pct(sh.successRate)});
        }
        t.print();
    }
    std::printf("\nShape check vs paper: both models produce the same "
                "degradation trend; resilience conclusions are model-"
                "independent.\n");
    return 0;
}
