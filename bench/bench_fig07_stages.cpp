/**
 * @file
 * Fig. 7 + Fig. 10: stage-specific resilience and the entropy signal.
 *
 * Fig. 7: action-logit distributions at non-critical (exploration) vs
 * critical (execution) steps, and the impact of injecting errors only in
 * one stage. Fig. 10: the entropy trace across a mission.
 */

#include <cmath>

#include "bench_util.hpp"
#include "models/model_zoo.hpp"
#include "tensor/ops.hpp"

using namespace create;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const int reps = bench::setupSerial(
        cli, "Fig. 7 stage-specific resilience + Fig. 10 entropy", 16);
    auto controller = ModelZoo::mineController(false);

    // --- Fig. 7: logit shapes per stage (clean run on mine_logs) --------
    {
        ComputeContext ctx(1);
        Rng rng(1);
        MineWorld w({40, 40, MineTask::Log, 99});
        w.setActiveSubtask({SubtaskType::MineLog, 6});
        double hCrit = 0, hFree = 0, topCrit = 0, topFree = 0;
        int nCrit = 0, nFree = 0;
        for (int s = 0; s < 500 && !w.subtaskComplete(); ++s) {
            const MineObs obs = w.observe();
            const auto logits = controller->inferLogits(
                static_cast<int>(SubtaskType::MineLog), obs.spatial,
                obs.state, ctx);
            const auto probs = ops::softmax(logits);
            const double h = ops::entropy(probs);
            double top = 0;
            for (float p : probs)
                top = std::max<double>(top, p);
            if (obs.spatial[11] > 0.5f) {
                hCrit += h;
                topCrit += top;
                ++nCrit;
            } else {
                hFree += h;
                topFree += top;
                ++nFree;
            }
            w.step(static_cast<Action>(sampleAction(logits, rng)));
        }
        Table t("Fig. 7: action-logit statistics by execution stage "
                "(mine_logs)");
        t.header({"stage", "steps", "mean entropy (nats)",
                  "mean top-action prob"});
        t.row({"critical (target in front)", std::to_string(nCrit),
               Table::num(nCrit ? hCrit / nCrit : 0, 3),
               Table::num(nCrit ? topCrit / nCrit : 0, 3)});
        t.row({"non-critical (exploration)", std::to_string(nFree),
               Table::num(nFree ? hFree / nFree : 0, 3),
               Table::num(nFree ? topFree / nFree : 0, 3)});
        t.print();
    }

    // --- Fig. 7(a)/(b): stage-gated injection ----------------------------
    {
        Table t("Fig. 7: corruption impact by stage (mine_logs x6, "
                "controller BER 8e-3 in one stage only)");
        t.header({"injected stage", "subtask success", "avg steps"});
        for (const bool criticalOnly : {false, true}) {
            int successes = 0;
            double steps = 0;
            for (int rep = 0; rep < reps; ++rep) {
                MineWorld w({40, 40, MineTask::Log,
                             404 + static_cast<std::uint64_t>(rep)});
                w.setActiveSubtask({SubtaskType::MineLog, 6});
                ComputeContext ctx(static_cast<std::uint64_t>(rep) * 3 + 11);
                ctx.domain = Domain::Controller;
                Rng rng(static_cast<std::uint64_t>(rep) + 21);
                int s = 0;
                for (; s < 420 && !w.subtaskComplete(); ++s) {
                    const MineObs obs = w.observe();
                    const bool critical = obs.spatial[11] > 0.5f;
                    if (critical == criticalOnly)
                        ctx.setUniformBer(8e-3);
                    else
                        ctx.setCleanMode();
                    const auto logits = controller->inferLogits(
                        static_cast<int>(SubtaskType::MineLog), obs.spatial,
                        obs.state, ctx);
                    w.step(static_cast<Action>(sampleAction(logits, rng)));
                }
                if (w.subtaskComplete()) {
                    ++successes;
                    steps += s;
                }
            }
            t.row({criticalOnly ? "critical (chopping)" :
                                  "non-critical (exploration)",
                   Table::pct(static_cast<double>(successes) / reps),
                   Table::num(successes ? steps / successes : 0, 0)});
        }
        t.print();
    }

    // --- Fig. 10: entropy trace across timesteps -------------------------
    {
        ComputeContext ctx(2);
        Rng rng(2);
        MineWorld w({40, 40, MineTask::Log, 1234});
        w.setActiveSubtask({SubtaskType::MineLog, 4});
        Table t("Fig. 10: entropy across timesteps (sampled every 4 steps)");
        t.header({"step", "entropy (nats)", "stage"});
        for (int s = 0; s < 160 && !w.subtaskComplete(); ++s) {
            const MineObs obs = w.observe();
            const auto logits = controller->inferLogits(
                static_cast<int>(SubtaskType::MineLog), obs.spatial,
                obs.state, ctx);
            if (s % 4 == 0) {
                const double h = ops::entropy(ops::softmax(logits));
                t.row({std::to_string(s), Table::num(h, 3),
                       obs.spatial[11] > 0.5f ? "critical" : "non-critical"});
            }
            w.step(static_cast<Action>(sampleAction(logits, rng)));
        }
        t.print();
    }
    std::printf("\nShape check vs paper: picky logits at critical steps, "
                "near-uniform during exploration; critical-stage errors "
                "are far more damaging; entropy tracks the stage.\n");
    return 0;
}
