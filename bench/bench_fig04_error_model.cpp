/**
 * @file
 * Fig. 4: the timing error model. (a) Per-bit flip rates across voltages
 * (higher bits = longer carry chains = fail first). (b) Error magnitudes
 * at 0.85 V vs the runtime activation range: high-bit flips land far
 * outside the data range (AD's prey), low-bit flips hide inside it.
 */

#include <cmath>

#include "bench_util.hpp"
#include "fault/injector.hpp"
#include "hw/faulty_gemm.hpp"

using namespace create;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    bench::setupAnalytic(cli, "Fig. 4 timing error model");

    Table a("Fig. 4(a): bit-level timing error rate under voltage scaling");
    a.header({"bit", "0.85 V", "0.80 V", "0.75 V", "0.70 V", "0.65 V"});
    const double volts[] = {0.85, 0.80, 0.75, 0.70, 0.65};
    std::vector<TimingErrorModel> models;
    for (double v : volts)
        models.emplace_back(v);
    for (int bit = 0; bit < kAccumulatorBits; bit += 2) {
        std::vector<std::string> row = {std::to_string(bit)};
        for (const auto& m : models)
            row.push_back(bench::berStr(m.bitRate(bit)));
        a.row(row);
    }
    a.print();

    // (b) Compare injected-error magnitudes against a realistic GEMM
    // output distribution (controller-like activations).
    Rng rng(42);
    const std::int64_t m = 64, k = 64, n = 64;
    Tensor x({m, k}), w({k, n});
    for (std::int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.normal());
    for (std::int64_t i = 0; i < w.numel(); ++i)
        w[i] = static_cast<float>(rng.normal()) * 0.15f;
    ComputeContext ctx(42);
    QuantGemmState st;
    ctx.calibrating = true;
    const Tensor clean = faultyLinear(x, w, nullptr, st, ctx, "b");
    ctx.calibrating = false;

    // Histogram of |error| caused by single-bit flips per bit position.
    Table b("Fig. 4(b): error magnitude by flipped bit vs data range "
            "(0.85 V pattern)");
    b.header({"flipped bit", "|error| (dequantized)", "data absmax",
              "inside data range?"});
    st.freeze(w, QuantBits::Int8);
    const float deqScale = st.inQ.scale * st.wQ.scale;
    for (int bit : {2, 6, 10, 14, 18, 22, 23}) {
        const double mag = std::ldexp(1.0, bit) * deqScale;
        b.row({std::to_string(bit), Table::num(mag, 3),
               Table::num(clean.absMax(), 3),
               mag <= clean.absMax() ? "yes" : "NO (anomaly)"});
    }
    b.print();
    std::printf("\nShape check vs paper: higher bits flip orders of "
                "magnitude more often at low voltage and their errors "
                "exceed the runtime data range.\n");
    return 0;
}
